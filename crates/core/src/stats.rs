//! Load statistics maintained by trackers.
//!
//! Each IAgent keeps (1) a sliding-window estimate of the total message
//! rate it receives — compared against `T_max`/`T_min` to trigger rehashing
//! — and (2) "the accumulated rate of update and query requests" per served
//! agent (paper §4.1), which the HAgent uses to plan even splits. Per-agent
//! counters decay by halving on a fixed interval so the plan reflects
//! recent traffic rather than all of history.

use std::collections::HashMap;
use std::fmt;

use agentrack_platform::AgentId;
use agentrack_sim::{SimDuration, SimTime, WindowedRate};

/// Rate and per-agent load statistics of one tracker.
pub struct LoadStats {
    rate: WindowedRate,
    per_agent: HashMap<AgentId, u64>,
    last_decay: SimTime,
    decay_interval: SimDuration,
    window: SimDuration,
    buckets: usize,
}

impl LoadStats {
    /// Creates empty statistics.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate (zero span or zero buckets) or
    /// the decay interval is zero.
    #[must_use]
    pub fn new(window: SimDuration, buckets: usize, decay_interval: SimDuration) -> Self {
        assert!(!decay_interval.is_zero(), "degenerate decay interval");
        LoadStats {
            rate: WindowedRate::new(window, buckets),
            per_agent: HashMap::new(),
            last_decay: SimTime::ZERO,
            decay_interval,
            window,
            buckets,
        }
    }

    /// Records one request concerning `about` (the registered/updated/
    /// located agent) at time `now`.
    pub fn record(&mut self, now: SimTime, about: AgentId) {
        self.rate.record(now);
        *self.per_agent.entry(about).or_insert(0) += 1;
        self.maybe_decay(now);
    }

    /// Records a request that concerns no particular agent (control
    /// traffic); it still counts toward the rate.
    pub fn record_control(&mut self, now: SimTime) {
        self.rate.record(now);
        self.maybe_decay(now);
    }

    /// Current request rate in messages/second.
    #[must_use]
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        self.rate.rate_per_sec(now)
    }

    /// Snapshot of per-agent accumulated loads (for a split request).
    #[must_use]
    pub fn loads(&self) -> Vec<(AgentId, u64)> {
        let mut v: Vec<(AgentId, u64)> = self.per_agent.iter().map(|(&a, &w)| (a, w)).collect();
        v.sort_unstable();
        v
    }

    /// Forgets an agent entirely (handed off or deregistered).
    pub fn forget(&mut self, agent: AgentId) {
        self.per_agent.remove(&agent);
    }

    /// Starts a fresh measurement epoch: clears the rate window and the
    /// per-agent counters. Called when a new hash-function version is
    /// installed — the traffic that drove the old partition must not drive
    /// another rehash of the new one.
    pub fn reset(&mut self, now: SimTime) {
        self.rate = WindowedRate::new(self.window, self.buckets);
        self.per_agent.clear();
        self.last_decay = now;
    }

    /// Total requests ever recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.rate.total_events()
    }

    fn maybe_decay(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_decay);
        let intervals = elapsed.as_nanos() / self.decay_interval.as_nanos();
        if intervals == 0 {
            return;
        }
        // Advance by whole intervals only, so the fractional remainder
        // keeps accumulating: counters decay the same way whether a quiet
        // stretch is observed in one call or across many.
        self.last_decay += self.decay_interval * intervals;
        let shift = u32::try_from(intervals).unwrap_or(63).min(63);
        self.per_agent.retain(|_, w| {
            *w >>= shift;
            *w > 0
        });
    }
}

impl fmt::Debug for LoadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadStats")
            .field("tracked_agents", &self.per_agent.len())
            .field("total", &self.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> LoadStats {
        LoadStats::new(SimDuration::from_secs(1), 10, SimDuration::from_secs(2))
    }

    #[test]
    fn records_accumulate_per_agent() {
        let mut s = stats();
        let t = SimTime::ZERO;
        s.record(t, AgentId::new(1));
        s.record(t, AgentId::new(1));
        s.record(t, AgentId::new(2));
        assert_eq!(s.loads(), vec![(AgentId::new(1), 2), (AgentId::new(2), 1)]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn control_traffic_counts_toward_rate_only() {
        let mut s = stats();
        s.record_control(SimTime::ZERO);
        assert!(s.loads().is_empty());
        assert!(s.rate_per_sec(SimTime::ZERO) > 0.0);
    }

    #[test]
    fn decay_halves_counters() {
        let mut s = stats();
        let t0 = SimTime::ZERO;
        for _ in 0..8 {
            s.record(t0, AgentId::new(1));
        }
        s.record(t0, AgentId::new(2)); // weight 1 → decays to 0 and is dropped
        let later = t0 + SimDuration::from_secs(3);
        s.record(later, AgentId::new(3));
        let loads = s.loads();
        assert!(loads.contains(&(AgentId::new(1), 4)));
        assert!(!loads.iter().any(|&(a, _)| a == AgentId::new(2)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = stats();
        s.record(SimTime::ZERO, AgentId::new(1));
        s.reset(SimTime::ZERO);
        assert!(s.loads().is_empty());
        assert_eq!(s.rate_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn forget_removes_the_agent() {
        let mut s = stats();
        s.record(SimTime::ZERO, AgentId::new(1));
        s.forget(AgentId::new(1));
        assert!(s.loads().is_empty());
    }

    /// Regression: `maybe_decay` used to halve exactly once per call no
    /// matter how many intervals had elapsed, so after a quiet stretch a
    /// tracker's split plan over-weighted ancient traffic.
    #[test]
    fn decay_catches_up_over_a_quiet_stretch() {
        let mut s = stats(); // 2 s decay interval
        let t0 = SimTime::ZERO;
        for _ in 0..64 {
            s.record(t0, AgentId::new(1));
        }
        // 6.5 s of silence = 3 whole intervals: 64 >> 3 = 8, not 32.
        s.record_control(t0 + SimDuration::from_millis(6500));
        assert_eq!(s.loads(), vec![(AgentId::new(1), 8)]);
    }

    #[test]
    fn decay_shift_is_capped_not_overflowing() {
        let mut s = stats();
        let t0 = SimTime::ZERO;
        for _ in 0..8 {
            s.record(t0, AgentId::new(1));
        }
        // 200 intervals elapse at once; a shift of 200 must clear the
        // counter, not overflow the shift amount.
        s.record_control(t0 + SimDuration::from_secs(400));
        assert!(s.loads().is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate decay interval")]
    fn zero_decay_interval_panics() {
        let _ = LoadStats::new(SimDuration::from_secs(1), 10, SimDuration::ZERO);
    }

    #[test]
    fn rate_reflects_recent_traffic() {
        let mut s = stats();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            s.record(t, AgentId::new(1));
            t += SimDuration::from_millis(10);
        }
        let r = s.rate_per_sec(t);
        assert!((80.0..120.0).contains(&r), "rate {r}");
        // After silence the rate collapses.
        assert_eq!(s.rate_per_sec(t + SimDuration::from_secs(5)), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Decay must be time-translation-invariant: observing one
            /// long gap in a single `record` call leaves exactly the
            /// same per-agent loads as observing the same gap chopped
            /// into many intermediate calls.
            #[test]
            fn decay_is_invariant_under_gap_splitting(
                seed in 1usize..512,
                gap_ms in 1u64..60_000,
                cuts in prop::collection::vec(0.0f64..1.0, 0..6),
            ) {
                let mut one = stats();
                let mut many = stats();
                let agent = AgentId::new(1);
                for _ in 0..seed {
                    one.record(SimTime::ZERO, agent);
                    many.record(SimTime::ZERO, agent);
                }
                let gap = SimDuration::from_millis(gap_ms);
                let mut times: Vec<SimTime> = cuts
                    .into_iter()
                    .map(|frac| SimTime::ZERO + gap.mul_f64(frac))
                    .collect();
                times.sort_unstable();
                for t in times {
                    many.record_control(t);
                }
                one.record_control(SimTime::ZERO + gap);
                many.record_control(SimTime::ZERO + gap);
                prop_assert_eq!(one.loads(), many.loads());
            }
        }
    }
}
