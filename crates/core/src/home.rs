//! The home-registry baseline: an Ajanta-style HLR scheme.
//!
//! Ajanta's location mechanism (paper §6) keeps, at each domain's registry,
//! "the precise current location for the agents which were created in its
//! domain", and agent *names* encode the creating registry. We model that
//! as one registry agent per node; every mobile agent reports each move to
//! the registry of its **home** (creation) node, and locates go to the
//! target's home registry.
//!
//! The home node is derivable from the target's name in Ajanta; here the
//! scheme keeps a shared in-process name table standing in for that
//! name-embedded information (reading it costs nothing, exactly like
//! parsing a name). This is also the limitation the paper calls out: the
//! scheme only works when names carry registry information.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, Spawner, TimerId};
use agentrack_sim::{CorrId, GiveUpCause, MetricsRegistry, TraceEvent};

use crate::centralized::CentralBehavior;
use crate::config::LocationConfig;
use crate::retry::{LocateTracker, Retry};
use crate::scheme::{
    ClientEvent, ClientFactory, DirectoryClient, LocationScheme, SchemeStats, SharedSchemeStats,
};
use crate::wire::Wire;

/// Behaviour of a per-node home registry.
///
/// A registry tracks exactly the agents whose home is its node; the
/// request handling is the same as the central tracker's, so it delegates.
#[derive(Debug, Default)]
pub struct HomeRegistryBehavior {
    inner: CentralBehavior,
}

impl HomeRegistryBehavior {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports mail losses and per-tracker metrics into the scheme's
    /// shared statistics.
    #[must_use]
    pub fn with_shared(self, shared: SharedSchemeStats) -> Self {
        HomeRegistryBehavior {
            inner: self.inner.with_shared(shared),
        }
    }
}

impl Agent for HomeRegistryBehavior {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        self.inner.on_message(ctx, from, payload);
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        // No timer to re-arm: the registry deliberately runs timerless
        // (no mailbox expiry, no gauge refresh — see the module docs).
        if lost_soft_state {
            self.inner.drop_soft_state(ctx);
        }
    }
}

/// Names standing in for Ajanta's registry-encoding agent names: agent →
/// home node.
type NameTable = Arc<RwLock<HashMap<AgentId, NodeId>>>;

/// The home-registry location scheme: one registry per node.
#[derive(Debug)]
pub struct HomeRegistryScheme {
    config: LocationConfig,
    shared: SharedSchemeStats,
    registries: Arc<Vec<AgentId>>,
    names: NameTable,
    bootstrapped: bool,
}

impl HomeRegistryScheme {
    /// Creates the scheme.
    #[must_use]
    pub fn new(config: LocationConfig) -> Self {
        HomeRegistryScheme {
            config,
            shared: SharedSchemeStats::new(),
            registries: Arc::new(Vec::new()),
            names: Arc::default(),
            bootstrapped: false,
        }
    }
}

impl LocationScheme for HomeRegistryScheme {
    fn name(&self) -> &'static str {
        "home-registry"
    }

    fn bootstrap(&mut self, platform: &mut dyn Spawner) {
        assert!(!self.bootstrapped, "bootstrap called twice");
        let registries: Vec<AgentId> = (0..platform.node_count())
            .map(|node| {
                platform.spawn_agent(
                    Box::new(HomeRegistryBehavior::new().with_shared(self.shared.clone())),
                    NodeId::new(node),
                )
            })
            .collect();
        self.shared.set_trackers(registries.len() as u64);
        self.registries = Arc::new(registries);
        self.bootstrapped = true;
    }

    fn client_factory(&self) -> ClientFactory {
        assert!(self.bootstrapped, "client_factory before bootstrap");
        let config = self.config.clone();
        let registries = Arc::clone(&self.registries);
        let names = Arc::clone(&self.names);
        let registry = self.shared.registry().clone();
        Arc::new(move || {
            Box::new(
                HomeRegistryClient::new(
                    config.clone(),
                    Arc::clone(&registries),
                    Arc::clone(&names),
                )
                .with_registry(registry.clone()),
            )
        })
    }

    fn stats(&self) -> SchemeStats {
        self.shared.snapshot()
    }

    fn registry(&self) -> MetricsRegistry {
        self.shared.registry().clone()
    }
}

/// Client-side state machine of the home-registry scheme.
#[derive(Debug)]
pub struct HomeRegistryClient {
    config: LocationConfig,
    registries: Arc<Vec<AgentId>>,
    names: NameTable,
    home: Option<NodeId>,
    registered: bool,
    tracker: LocateTracker,
    registry: MetricsRegistry,
}

impl HomeRegistryClient {
    /// Creates a client over the per-node registries and the shared name
    /// table.
    #[must_use]
    pub fn new(config: LocationConfig, registries: Arc<Vec<AgentId>>, names: NameTable) -> Self {
        HomeRegistryClient {
            config,
            registries,
            names,
            home: None,
            registered: false,
            tracker: LocateTracker::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Reports locate latencies into the given registry (the scheme's
    /// shared one) instead of a detached default.
    #[must_use]
    pub fn with_registry(mut self, registry: MetricsRegistry) -> Self {
        self.registry = registry;
        self
    }

    fn registry_at(&self, node: NodeId) -> (AgentId, NodeId) {
        (self.registries[node.index()], node)
    }

    fn send_home(&self, ctx: &mut AgentCtx<'_>, msg: &Wire) {
        let home = self.home.expect("home set at registration");
        let (registry, node) = self.registry_at(home);
        ctx.send(registry, node, msg.payload());
    }

    fn send_locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        // The target's home comes from its name (zero-cost lookup). An
        // unregistered target has no name to parse yet; retry later.
        let home = self.names.read().get(&target).copied();
        // An unregistered target has no home yet; the retry timer tries
        // again later.
        if let Some(home) = home {
            let (registry, node) = self.registry_at(home);
            let here = ctx.node();
            let me = ctx.self_id();
            let msg = Wire::Locate {
                target,
                token,
                reply_node: here,
                corr: Some(CorrId::new(me.raw(), token)),
                freshness: self.tracker.freshness(token).unwrap_or_default(),
            };
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                kind: msg.kind(),
                corr: msg.corr(),
                from: me.raw(),
                to: registry.raw(),
                node: here,
            });
            ctx.send(registry, node, msg.payload());
            self.tracker.note_tracker(token, registry.raw(), node);
        }
        self.tracker
            .arm_timer(ctx, self.config.locate_retry_timeout, token);
    }

    fn act(&mut self, ctx: &mut AgentCtx<'_>, decision: Retry) -> ClientEvent {
        let me = ctx.self_id();
        match decision {
            Retry::Again { token, target } => {
                let attempt = self.tracker.attempts(token).unwrap_or(0);
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryAttempt {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempt,
                });
                self.send_locate(ctx, target, token);
                ClientEvent::Consumed
            }
            Retry::GiveUp {
                token,
                target,
                cause,
                tracker,
                tracker_node,
            } => {
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryGiveUp {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempts: self.config.max_locate_attempts,
                    cause,
                });
                if let Some(tracker) = tracker {
                    let remote = tracker_node.is_some_and(|n| n != ctx.node());
                    self.registry.update_tracker(tracker, |t| match cause {
                        GiveUpCause::Timeout => {
                            t.giveup_timeout += 1;
                            if remote {
                                t.giveup_timeout_remote += 1;
                            }
                        }
                        GiveUpCause::Negative => {
                            t.giveup_negative += 1;
                            if remote {
                                t.giveup_negative_remote += 1;
                            }
                        }
                    });
                }
                ClientEvent::Failed { token, target }
            }
            Retry::Nothing => ClientEvent::Consumed,
        }
    }

    fn retry_locate(&mut self, ctx: &mut AgentCtx<'_>, token: u64) -> ClientEvent {
        let decision = self
            .tracker
            .on_negative(token, self.config.max_locate_attempts);
        self.act(ctx, decision)
    }
}

impl DirectoryClient for HomeRegistryClient {
    fn register(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        let here = ctx.node();
        if self.home.is_none() {
            self.home = Some(here);
            self.names.write().insert(me, here);
        }
        self.send_home(
            ctx,
            &Wire::Register {
                agent: me,
                node: here,
            },
        );
    }

    fn moved(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.registered {
            self.register(ctx);
            return;
        }
        let me = ctx.self_id();
        let here = ctx.node();
        self.send_home(
            ctx,
            &Wire::Update {
                agent: me,
                node: here,
            },
        );
    }

    fn deregister(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.home.is_some() {
            let me = ctx.self_id();
            self.send_home(ctx, &Wire::Deregister { agent: me, ttl: 0 });
            self.names.write().remove(&me);
        }
    }

    fn locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        self.locate_with(ctx, target, token, crate::wire::Freshness::Any);
    }

    fn locate_with(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        freshness: crate::wire::Freshness,
    ) {
        self.tracker.start_with(token, target, ctx.now(), freshness);
        self.send_locate(ctx, target, token);
    }

    fn on_message(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _from: AgentId,
        payload: &Payload,
    ) -> ClientEvent {
        let Some(msg) = Wire::from_payload(payload) else {
            return ClientEvent::NotMine;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        match msg {
            Wire::RegisterAck { agent } => {
                if agent == ctx.self_id() && !self.registered {
                    self.registered = true;
                    ClientEvent::Registered
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                ..
            } => {
                if let Some(started) = self.tracker.complete(token) {
                    self.registry
                        .record_locate(ctx.now().saturating_since(started));
                    ClientEvent::Located {
                        token,
                        target,
                        node,
                        stale,
                        age_ms,
                    }
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::NotFound { token, .. } => self.retry_locate(ctx, token),
            _ => ClientEvent::NotMine,
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) -> ClientEvent {
        // Registries are static; only injected faults bounce. Updates are
        // resent; locates recover via their timers.
        match Wire::from_payload(payload) {
            Some(Wire::Update { .. } | Wire::Register { .. }) => {
                self.moved(ctx);
                ClientEvent::Consumed
            }
            Some(_) => ClientEvent::Consumed,
            None => ClientEvent::NotMine,
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) -> ClientEvent {
        match self
            .tracker
            .on_timer(timer, self.config.max_locate_attempts)
        {
            Some(decision) => self.act(ctx, decision),
            None => ClientEvent::NotMine,
        }
    }
}
