//! The scheme abstraction: every location mechanism (the paper's hash-based
//! one and the baselines) plugs into experiments through these traits.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use agentrack_platform::{AgentCtx, AgentId, NodeId, Payload, Spawner, TimerId};
use agentrack_sim::MetricsRegistry;

/// A thread-safe constructor of scheme clients, so workloads can create
/// clients for agents born *during* a run (population churn).
pub type ClientFactory = Arc<dyn Fn() -> Box<dyn DirectoryClient> + Send + Sync>;

/// What a [`DirectoryClient`] reports back to its owning agent after being
/// offered an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// The event was not protocol traffic; the owner should handle it.
    NotMine,
    /// Protocol traffic, consumed; nothing to report.
    Consumed,
    /// The owner's registration completed.
    Registered,
    /// A locate finished successfully.
    Located {
        /// Token passed to [`DirectoryClient::locate`].
        token: u64,
        /// The located agent.
        target: AgentId,
        /// Its reported node.
        node: NodeId,
        /// `true` when the answer came from a replica or
        /// recovery-restored record (degraded mode): treat `node` as a
        /// best-effort hint that may lag the target's true location.
        stale: bool,
        /// Age of the answering record in milliseconds (0 for an
        /// authoritative answer). Guaranteed to fit the freshness bound
        /// the locate declared.
        age_ms: u64,
    },
    /// A locate gave up (retry budget exhausted or target unknown).
    Failed {
        /// Token passed to [`DirectoryClient::locate`].
        token: u64,
        /// The agent that could not be located.
        target: AgentId,
    },
    /// Mail delivered through the mechanism ([`DirectoryClient::send_via`]
    /// on the sending side): the owner should treat `data` as an incoming
    /// application message from `from`.
    Mail {
        /// The original sender.
        from: AgentId,
        /// Application payload bytes.
        data: Vec<u8>,
    },
}

/// Client-side state machine of a location scheme, embedded in each mobile
/// agent's behaviour.
///
/// The owning behaviour forwards its lifecycle events here:
/// `on_create` → [`register`](DirectoryClient::register),
/// `on_arrival` → [`moved`](DirectoryClient::moved), incoming messages /
/// failures / timers → the corresponding `on_*` method, acting on anything
/// reported back as a [`ClientEvent`].
///
/// `Send` because clients travel inside agent behaviours, which migrate
/// between node threads on the live runtime.
pub trait DirectoryClient: Send {
    /// Registers the owning agent with the scheme. Call from `on_create`.
    fn register(&mut self, ctx: &mut AgentCtx<'_>);

    /// Reports that the owning agent moved. Call from `on_arrival`.
    fn moved(&mut self, ctx: &mut AgentCtx<'_>);

    /// Withdraws the owning agent from the directory. Call from
    /// `on_dispose` when the agent dies.
    fn deregister(&mut self, ctx: &mut AgentCtx<'_>);

    /// Starts locating `target`; the outcome arrives later as
    /// [`ClientEvent::Located`] or [`ClientEvent::Failed`] carrying `token`.
    fn locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64);

    /// Like [`locate`](DirectoryClient::locate), but the query declares
    /// how fresh the answer must be. The default ignores the requirement
    /// and behaves like a plain locate ([`crate::Freshness::Any`]) —
    /// correct for schemes without replicated records, where every
    /// answer is authoritative; the hashed scheme overrides it to thread
    /// the bound through the wire.
    fn locate_with(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        freshness: crate::Freshness,
    ) {
        let _ = freshness;
        self.locate(ctx, target, token);
    }

    /// Offers an incoming message to the client.
    fn on_message(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        from: AgentId,
        payload: &Payload,
    ) -> ClientEvent;

    /// Offers a delivery failure (a tracker the client contacted moved or
    /// was merged away).
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) -> ClientEvent;

    /// Offers a timer; the client owns timers it set itself.
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) -> ClientEvent;

    /// The owning agent's node restarted after a crash. The default
    /// re-announces the agent's current location (an upsert in every
    /// scheme), repairing tracker records that were wiped with the
    /// node's soft state. Call from `on_restart`.
    fn restarted(&mut self, ctx: &mut AgentCtx<'_>) {
        self.moved(ctx);
    }

    /// Sends `data` to `target` *through the mechanism* (guaranteed
    /// delivery: the responsible tracker forwards it, buffering across the
    /// target's migrations). Returns `false` if this scheme does not
    /// support mediated delivery. The recipient's owner sees
    /// [`ClientEvent::Mail`].
    fn send_via(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, data: Vec<u8>) -> bool {
        let _ = (ctx, target, data);
        false
    }
}

/// A location scheme: service-side bootstrap plus client construction.
pub trait LocationScheme {
    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;

    /// Spawns the scheme's service agents (trackers, registries, hash
    /// agents) on a runtime — the deterministic simulator or the live
    /// threaded platform. Must be called once, before any client
    /// registers.
    fn bootstrap(&mut self, platform: &mut dyn Spawner);

    /// Returns a constructor for client state machines, usable while the
    /// run is in progress (newly born agents need clients too).
    fn client_factory(&self) -> ClientFactory;

    /// Creates the client state machine for one mobile agent.
    fn make_client(&self) -> Box<dyn DirectoryClient> {
        (self.client_factory())()
    }

    /// Scheme-level statistics accumulated so far.
    fn stats(&self) -> SchemeStats;

    /// The per-tracker metrics registry behaviours report into. The
    /// default is a detached, always-empty registry; schemes that track
    /// per-tracker metrics return their shared one.
    fn registry(&self) -> MetricsRegistry {
        MetricsRegistry::new()
    }

    /// Hash-function version held by every copy holder, as
    /// `(agent raw id, role, version)` triples. Empty for schemes
    /// without replicated hash functions; the invariant checker uses it
    /// to assert post-fault convergence.
    fn hash_versions(&self) -> Vec<(u64, CopyRole, u64)> {
        Vec::new()
    }

    /// Administratively freezes (or thaws) directory adaptation: while
    /// frozen, the control plane denies every split/merge request with
    /// [`crate::DenyReason::ReadOnly`] and grants no new rehash leases,
    /// though leases already in flight still commit. The post-quiesce
    /// invariant audit uses this to drain adaptation before sampling
    /// hash-function versions — otherwise a cascade still adapting at the
    /// sampling instant looks like a convergence failure. No-op for
    /// schemes without an adaptive directory.
    fn set_adaptation_frozen(&self, _frozen: bool) {}
}

/// Which replica of the hash function an agent holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyRole {
    /// The HAgent's primary copy: the serialization point for rehashes.
    Primary,
    /// The standby HAgent's read-only replica.
    Standby,
    /// An LHAgent's lazily refreshed secondary copy.
    Secondary,
    /// An IAgent's working copy, installed by the HAgent.
    Tracker,
}

/// Counters describing what a scheme did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Splits committed by the HAgent.
    pub splits: u64,
    /// Merges committed by the HAgent.
    pub merges: u64,
    /// Rehash requests denied (cooldown, in-progress, unbalanceable).
    pub rehash_denied: u64,
    /// Hash-function copies served to LHAgents.
    pub hf_fetches: u64,
    /// Records moved between trackers by handoffs.
    pub records_handed_off: u64,
    /// `NotResponsible` answers sent (stale-copy detections).
    pub stale_hits: u64,
    /// Locate answers served from a buffered (pending) state after a
    /// handoff arrived.
    pub pending_served: u64,
    /// Current number of active trackers (IAgents / registries).
    pub trackers: u64,
    /// Peak number of active trackers.
    pub peak_trackers: u64,
    /// Forwarding-pointer chain hops walked (forwarding baseline only).
    pub chain_hops: u64,
    /// Height of the hash tree after the latest rehash (hashed scheme).
    pub tree_height: u64,
    /// Sum of hyper-label bit lengths over current leaves (hashed scheme);
    /// divide by `trackers` for the mean consumed-prefix length.
    pub depth_bits_total: u64,
    /// IAgent locality migrations performed (extension E9).
    pub iagent_moves: u64,
    /// Record-replication batches sent to buddy replicas.
    pub record_syncs: u64,
    /// Recoveries entered by restarted trackers that lost soft state.
    pub recoveries_started: u64,
    /// Recoveries that ended (converged or timed out).
    pub recoveries_completed: u64,
    /// Locate answers served from recovered-but-unconfirmed records
    /// (tagged `stale: true`).
    pub stale_answers: u64,
    /// Locate answers served locally from a buddy's replica copy by a
    /// tracker that is *not* responsible for the target — the
    /// freshness-bounded partition-tolerant read path.
    pub replica_answers: u64,
    /// Locates a tracker declined to answer because every record it had
    /// (live, recovery, or replica) was older than the query's declared
    /// freshness bound.
    pub freshness_refusals: u64,
    /// Cross-region hedged locates launched by clients whose home
    /// region's tracker looked unreachable.
    pub hedged_locates: u64,
    /// Answers whose reported age exceeded the query's declared bound —
    /// a protocol violation; the invariant audit requires this to stay 0.
    pub bound_violations: u64,
}

/// Shared mutable scheme statistics: behaviours hold clones of this handle.
///
/// Also carries the scheme's [`MetricsRegistry`], so every behaviour that
/// already holds the stats handle can report per-tracker metrics without
/// further plumbing.
///
/// Thread-safe so behaviours can run on either runtime.
#[derive(Clone, Default)]
pub struct SharedSchemeStats {
    stats: Arc<Mutex<SchemeStats>>,
    registry: MetricsRegistry,
    versions: Arc<Mutex<Vec<(u64, CopyRole, u64)>>>,
    adaptation_frozen: Arc<AtomicBool>,
}

impl SharedSchemeStats {
    /// Creates zeroed shared statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current snapshot.
    #[must_use]
    pub fn snapshot(&self) -> SchemeStats {
        *self.stats.lock()
    }

    /// Applies a mutation to the counters.
    pub fn update(&self, f: impl FnOnce(&mut SchemeStats)) {
        f(&mut self.stats.lock());
    }

    /// Records a change in the number of trackers.
    pub fn set_trackers(&self, n: u64) {
        let mut s = self.stats.lock();
        s.trackers = n;
        s.peak_trackers = s.peak_trackers.max(n);
    }

    /// The per-tracker metrics registry riding along with the counters.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records the hash-function version agent `id` currently holds
    /// (upserting its previous entry). Copy holders call this on every
    /// install, so [`SharedSchemeStats::versions`] always reflects the
    /// latest state.
    pub fn record_version(&self, id: u64, role: CopyRole, version: u64) {
        let mut versions = self.versions.lock();
        match versions.iter_mut().find(|(agent, _, _)| *agent == id) {
            Some(entry) => *entry = (id, role, version),
            None => versions.push((id, role, version)),
        }
    }

    /// The latest recorded hash-function version per copy holder.
    #[must_use]
    pub fn versions(&self) -> Vec<(u64, CopyRole, u64)> {
        self.versions.lock().clone()
    }

    /// Flips the administrative adaptation freeze; see
    /// [`LocationScheme::set_adaptation_frozen`].
    pub fn set_adaptation_frozen(&self, frozen: bool) {
        self.adaptation_frozen.store(frozen, Ordering::Relaxed);
    }

    /// Whether adaptation is administratively frozen.
    #[must_use]
    pub fn adaptation_frozen(&self) -> bool {
        self.adaptation_frozen.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for SharedSchemeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedSchemeStats({:?})", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_stats_accumulate() {
        let s = SharedSchemeStats::new();
        s.update(|x| x.splits += 2);
        s.set_trackers(5);
        s.set_trackers(3);
        let snap = s.snapshot();
        assert_eq!(snap.splits, 2);
        assert_eq!(snap.trackers, 3);
        assert_eq!(snap.peak_trackers, 5);
        let clone = s.clone();
        clone.update(|x| x.merges += 1);
        assert_eq!(s.snapshot().merges, 1);
    }
}
