//! The Information Agent (IAgent): tracks the precise current location of
//! the mobile agents assigned to it by the hash function.
//!
//! Responsibilities (paper §2.2–§4):
//!
//! * answer `Register` / `Update` / `Locate` requests for agents whose key
//!   hashes to its leaf, and answer `NotResponsible` for agents that do not
//!   (the stale-copy detection that drives update propagation);
//! * maintain the request-rate statistics and ask the HAgent to **split**
//!   when the rate exceeds `T_max` or to **merge** it away when the rate
//!   falls below `T_min`;
//! * on receiving a new hash-function version, **hand off** records that no
//!   longer hash to it — or everything, plus dispose itself, if its leaf
//!   was merged away;
//! * buffer locate queries for agents that hash to it but whose records are
//!   still in flight (handoff races), answering when the handoff lands or
//!   the pending timeout expires.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashMap;

use agentrack_hashtree::IAgentId;
use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, TimerId};
use agentrack_sim::{CorrId, SimDuration, SimTime, TraceEvent};

use crate::config::LocationConfig;
use crate::mailbox::{Mailbox, MAIL_MAX_HOPS};
use crate::replica::{replica_usable, RecoveryPhase, RecoveryState, ReplicaStore, Replicator};
use crate::scheme::{CopyRole, SharedSchemeStats};
use crate::stats::LoadStats;
use crate::wire::{DenyReason, Freshness, HashFunction, Wire};

#[derive(Debug, Clone)]
struct PendingLocate {
    target: AgentId,
    requester: AgentId,
    reply_node: NodeId,
    token: u64,
    freshness: Freshness,
    corr: Option<CorrId>,
    deadline: SimTime,
}

/// How long a deregistered agent's tombstone shields its key from
/// straggling `Register`/`Update`/`Handoff` re-insertions. Long enough to
/// outlive any in-flight message from the dead sender, short enough that
/// the map stays bounded under sustained churn.
const TOMBSTONE_TTL: SimDuration = SimDuration::from_secs(10);

/// Behaviour of an IAgent.
#[derive(Debug)]
pub struct IAgentBehavior {
    config: LocationConfig,
    hagent: AgentId,
    hagent_node: NodeId,
    hf: HashFunction,
    records: BTreeMap<AgentId, NodeId>,
    stats: LoadStats,
    shared: SharedSchemeStats,
    /// Fresh IAgents (created mid-split) must report ready and wait for
    /// their first install.
    fresh: bool,
    /// The rehash lease this fresh IAgent was created under; echoed in
    /// `IAgentReady` so the HAgent commits the right lease (and ignores
    /// orphans of aborted ones).
    lease: u64,
    installed: bool,
    created_at: SimTime,
    /// When this tracker's own outstanding split/merge request was sent,
    /// if one is in flight. Cleared by the answer (an install that changes
    /// this tracker's partition, or a denial) or by the lease-timeout
    /// give-up in `on_timer`.
    rehash_request: Option<SimTime>,
    /// This tracker must not re-ask for a rehash before this instant. Set
    /// per cause: after its partition changed, or per [`DenyReason`] on a
    /// denial — *not* by installs of versions that left its partition
    /// alone (those used to silence an overdue split here).
    rehash_backoff_until: SimTime,
    pending: Vec<PendingLocate>,
    /// Client requests that arrived before the first install; replayed once
    /// the hash function lands (a fresh IAgent receives traffic the moment
    /// the HAgent commits the split, possibly before its install message).
    preinstall: Vec<(AgentId, Wire)>,
    /// Handoff records whose destination bounced; re-dispatched after a
    /// hash-function refetch.
    unplaced: Vec<(AgentId, NodeId)>,
    refetch_in_flight: bool,
    /// When the refetch was sent; a reply overdue (lost, or bounced off
    /// this IAgent's old node after a locality migration) re-arms it.
    refetch_sent_at: SimTime,
    /// Mediated mail awaiting its recipient's next location update
    /// (guaranteed-delivery extension).
    mailbox: Mailbox,
    /// Recent request origins, for the locality extension: which node the
    /// served agents (and queriers) talk from.
    origin_counts: HashMap<NodeId, u64>,
    /// Set while a locality migration is in flight.
    relocating: bool,
    /// Protocol messages handled since birth; copied into the metrics
    /// registry on the periodic timer (so the hot path takes no lock).
    requests_seen: u64,
    /// When the last periodic version audit ran (chaos runs only; see
    /// [`LocationConfig::version_audit`]).
    last_audit: SimTime,
    /// Fallback buddy (the standby HAgent) when the tree has a single
    /// leaf, so no sibling-leaf buddy exists.
    standby: Option<(AgentId, NodeId)>,
    /// Outbound replication of this tracker's records to its buddy.
    replicator: Replicator,
    /// Replica copies held on behalf of buddy trackers. Never merged into
    /// `records` or the `records_held` gauge: a replica is not ownership.
    replica_store: ReplicaStore,
    /// Recovered-but-unconfirmed records, answered with `stale: true`
    /// until a fresh `Register`/`Update` reconfirms them.
    stale_records: BTreeSet<AgentId>,
    /// When the stale records were resurrected from the replica, and how
    /// old that replica already was — together they give every stale
    /// answer its age for freshness-bounded reads.
    stale_recovered_at: SimTime,
    stale_base_age_ms: u64,
    /// Tombstones for deregistered agents, keyed by when the deregister
    /// arrived. A dying agent's last `Update` can still be in flight when
    /// its `Deregister` is processed; without the tombstone that straggler
    /// re-inserts the record and — the sender being dead — nothing ever
    /// removes it again. Entries expire after [`TOMBSTONE_TTL`].
    departed: BTreeMap<AgentId, SimTime>,
    /// The recovery run after a soft-state-losing restart, if any.
    recovery: Option<RecoveryState>,
}

impl IAgentBehavior {
    /// The bootstrap IAgent: owns the whole key space from the start.
    #[must_use]
    pub fn initial(
        config: LocationConfig,
        hagent: AgentId,
        hagent_node: NodeId,
        hf: HashFunction,
        shared: SharedSchemeStats,
    ) -> Self {
        Self::build(config, hagent, hagent_node, hf, shared, false)
    }

    /// An IAgent created by the HAgent during a split; reports ready and
    /// waits for its install.
    #[must_use]
    pub fn fresh(
        config: LocationConfig,
        hagent: AgentId,
        hagent_node: NodeId,
        hf: HashFunction,
        shared: SharedSchemeStats,
    ) -> Self {
        Self::build(config, hagent, hagent_node, hf, shared, true)
    }

    fn build(
        config: LocationConfig,
        hagent: AgentId,
        hagent_node: NodeId,
        hf: HashFunction,
        shared: SharedSchemeStats,
        fresh: bool,
    ) -> Self {
        let stats = LoadStats::new(
            config.rate_window,
            config.rate_buckets,
            config.decay_interval,
        );
        let mailbox = Mailbox::new(config.mail_ttl);
        IAgentBehavior {
            config,
            hagent,
            hagent_node,
            hf,
            records: BTreeMap::new(),
            stats,
            shared,
            fresh,
            lease: 0,
            installed: !fresh,
            created_at: SimTime::ZERO,
            rehash_request: None,
            rehash_backoff_until: SimTime::ZERO,
            pending: Vec::new(),
            preinstall: Vec::new(),
            unplaced: Vec::new(),
            refetch_in_flight: false,
            refetch_sent_at: SimTime::ZERO,
            mailbox,
            origin_counts: HashMap::new(),
            relocating: false,
            requests_seen: 0,
            last_audit: SimTime::ZERO,
            standby: None,
            replicator: Replicator::default(),
            replica_store: ReplicaStore::default(),
            stale_records: BTreeSet::new(),
            stale_recovered_at: SimTime::ZERO,
            stale_base_age_ms: 0,
            departed: BTreeMap::new(),
            recovery: None,
        }
    }

    /// Sets the standby fallback buddy: where this tracker replicates when
    /// the tree has a single leaf (no sibling) and during recovery when the
    /// HAgent knows no better.
    #[must_use]
    pub fn with_standby(mut self, standby: Option<(AgentId, NodeId)>) -> Self {
        self.standby = standby;
        self
    }

    /// Stamps a fresh IAgent with the rehash lease it was created under.
    #[must_use]
    pub fn with_lease(mut self, lease: u64) -> Self {
        self.lease = lease;
        self
    }

    fn my_id(ctx: &AgentCtx<'_>) -> IAgentId {
        IAgentId::new(ctx.self_id().raw())
    }

    fn is_mine(&self, ctx: &AgentCtx<'_>, agent: AgentId) -> bool {
        self.hf.is_responsible(ctx.self_id(), agent)
    }

    fn send_hagent(&self, ctx: &mut AgentCtx<'_>, msg: &Wire) {
        ctx.send(self.hagent, self.hagent_node, msg.payload());
    }

    /// Sends a wire message, emitting a `MessageSend` trace event.
    fn send_traced(&self, ctx: &mut AgentCtx<'_>, to: AgentId, node: NodeId, msg: &Wire) {
        let me = ctx.self_id();
        let here = ctx.node();
        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
            kind: msg.kind(),
            corr: msg.corr(),
            from: me.raw(),
            to: to.raw(),
            node: here,
        });
        ctx.send(to, node, msg.payload());
    }

    /// Records where a request came from, for locality decisions.
    fn note_origin(&mut self, node: NodeId) {
        if self.config.locality_migration {
            *self.origin_counts.entry(node).or_insert(0) += 1;
        }
    }

    /// Locality check (paper §7 extension): move to the node originating
    /// the majority of recent traffic.
    fn maybe_relocate(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.config.locality_migration
            || self.relocating
            || !self.installed
            || self.rehash_request.is_some()
            // Migrating now would bounce the pending hash-function reply at
            // the old node and strand the unplaced records.
            || self.refetch_in_flight
            || !self.unplaced.is_empty()
        {
            return;
        }
        let total: u64 = self.origin_counts.values().sum();
        if total < self.config.locality_min_requests {
            return;
        }
        let (&top, &count) = self
            .origin_counts
            .iter()
            .max_by_key(|&(node, count)| (*count, std::cmp::Reverse(node.raw())))
            .expect("total > 0 implies an entry");
        self.origin_counts.clear();
        if top != ctx.node() && count as f64 / total as f64 >= self.config.locality_threshold {
            self.relocating = true;
            ctx.dispatch(top);
        }
    }

    /// Split check, run after every recorded request.
    fn maybe_request_split(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.rehash_request.is_some() || ctx.now() < self.rehash_backoff_until || !self.installed
        {
            return;
        }
        let rate = self.stats.rate_per_sec(ctx.now());
        if rate > self.config.t_max {
            let loads = self.stats.loads();
            self.rehash_request = Some(ctx.now());
            self.send_hagent(ctx, &Wire::SplitRequest { rate, loads });
        }
    }

    /// Merge check, run from the periodic timer so idle IAgents notice.
    fn maybe_request_merge(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.config.merge_enabled
            || self.rehash_request.is_some()
            || ctx.now() < self.rehash_backoff_until
            || !self.installed
            || ctx.now().saturating_since(self.created_at) < self.config.merge_warmup
            || self.hf.tree.iagent_count() <= 1
        {
            return;
        }
        let rate = self.stats.rate_per_sec(ctx.now());
        if rate < self.config.t_min {
            self.rehash_request = Some(ctx.now());
            self.send_hagent(ctx, &Wire::MergeRequest { rate });
        }
    }

    /// Installs a new hash-function version: hand off records that no
    /// longer hash here; dispose if this leaf was merged away.
    fn install(&mut self, ctx: &mut AgentCtx<'_>, hf: HashFunction) {
        if hf.version <= self.hf.version && self.installed {
            return; // stale or duplicate install
        }
        let first_install = !self.installed;
        let me = Self::my_id(ctx);
        let label_before = if first_install {
            None
        } else {
            self.hf.tree.hyper_label(me).ok()
        };
        self.hf = hf;
        self.installed = true;
        self.shared
            .record_version(ctx.self_id().raw(), CopyRole::Tracker, self.hf.version);
        // The post-install cooldown is scoped to versions that changed
        // *this tracker's* partition (its hyper-label moved, it was merged
        // away, or this is its first view). A rehash in a distant subtree
        // changes nothing here: the observed rate still describes the
        // current partition, and an overdue split request must not be
        // silenced by it.
        if first_install || self.hf.tree.hyper_label(me).ok() != label_before {
            self.rehash_request = None;
            self.rehash_backoff_until = ctx.now() + self.config.rehash_cooldown;
            // Fresh epoch: rate observed against the old partition must
            // not trigger another rehash of the new one.
            self.stats.reset(ctx.now());
        }
        if first_install {
            let buffered = std::mem::take(&mut self.preinstall);
            for (from, msg) in buffered {
                self.handle_wire(ctx, from, msg);
            }
        }

        if !self.hf.tree.contains(me) {
            // Merged away: hand off everything and retire. Buffered mail
            // chases its keys' new trackers.
            let records: Vec<(AgentId, NodeId)> =
                std::mem::take(&mut self.records).into_iter().collect();
            self.dispatch_handoffs(ctx, records);
            for item in self.mailbox.drain_if(|_| true) {
                let (owner, node) = self.hf.resolve(item.target);
                ctx.send(
                    owner,
                    node,
                    Wire::DeliverVia {
                        target: item.target,
                        from: item.from,
                        data: item.data,
                        ttl: MAIL_MAX_HOPS,
                    }
                    .payload(),
                );
            }
            for p in std::mem::take(&mut self.pending) {
                self.send_traced(
                    ctx,
                    p.requester,
                    p.reply_node,
                    &Wire::NotResponsible {
                        about: p.target,
                        token: Some(p.token),
                        corr: p.corr,
                    },
                );
            }
            ctx.dispose();
            return;
        }

        // Hand off the records that now belong elsewhere.
        let moved: Vec<(AgentId, NodeId)> = self
            .records
            .iter()
            .filter(|(agent, _)| !self.hf.is_responsible(ctx.self_id(), **agent))
            .map(|(&a, &n)| (a, n))
            .collect();
        for (agent, _) in &moved {
            self.records.remove(agent);
            self.stale_records.remove(agent);
            self.stats.forget(*agent);
        }
        self.dispatch_handoffs(ctx, moved);

        // Buffered mail for keys that now hash elsewhere chases its new
        // tracker.
        let self_id = ctx.self_id();
        let moved_mail = {
            let hf = &self.hf;
            self.mailbox
                .drain_if(|item| !hf.is_responsible(self_id, item.target))
        };
        for item in moved_mail {
            let (owner, node) = self.hf.resolve(item.target);
            ctx.send(
                owner,
                node,
                Wire::DeliverVia {
                    target: item.target,
                    from: item.from,
                    data: item.data,
                    ttl: MAIL_MAX_HOPS,
                }
                .payload(),
            );
        }

        // Pending queries for targets that now hash elsewhere bounce back.
        let hf = &self.hf;
        let self_id = ctx.self_id();
        let (stay, bounce): (Vec<_>, Vec<_>) = self
            .pending
            .drain(..)
            .partition(|p| hf.is_responsible(self_id, p.target));
        self.pending = stay;
        for p in bounce {
            self.send_traced(
                ctx,
                p.requester,
                p.reply_node,
                &Wire::NotResponsible {
                    about: p.target,
                    token: Some(p.token),
                    corr: p.corr,
                },
            );
        }

        // Replication duty follows ownership: the sibling leaf may have
        // changed, and the (possibly shrunk or grown) record set should
        // reach the buddy under the new partition promptly.
        self.refresh_buddy(ctx);
        self.replicator.mark_dirty();
    }

    /// Groups records by their new owner and sends handoffs.
    fn dispatch_handoffs(&mut self, ctx: &mut AgentCtx<'_>, records: Vec<(AgentId, NodeId)>) {
        if records.is_empty() {
            return;
        }
        let mut by_owner: BTreeMap<AgentId, (NodeId, Vec<(AgentId, NodeId)>)> = BTreeMap::new();
        for (agent, node) in records {
            let (owner, owner_node) = self.hf.resolve(agent);
            by_owner
                .entry(owner)
                .or_insert_with(|| (owner_node, Vec::new()))
                .1
                .push((agent, node));
        }
        let mut total = 0u64;
        for (owner, (owner_node, recs)) in by_owner {
            total += recs.len() as u64;
            ctx.send(owner, owner_node, Wire::Handoff { records: recs }.payload());
        }
        self.shared.update(|s| s.records_handed_off += total);
    }

    /// Final mail leg: wrap as `MailDrop` and send to the recipient's
    /// recorded node.
    fn forward_mail(
        &self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        node: NodeId,
        from: AgentId,
        data: Vec<u8>,
    ) {
        ctx.send(target, node, Wire::MailDrop { from, data }.payload());
    }

    /// Buffers mail for `target`, counting the buffering in the metrics
    /// registry and the event trace.
    fn buffer_mail(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        from: AgentId,
        data: Vec<u8>,
    ) {
        self.mailbox.push(ctx.now(), target, from, data);
        let occupancy = self.mailbox.len();
        let me = ctx.self_id().raw();
        self.shared.registry().update_tracker(me, |t| {
            t.mail_buffered += 1;
            t.observe_mailbox(occupancy);
        });
        ctx.trace().emit(ctx.now(), || TraceEvent::MailBuffered {
            tracker: me,
            target: target.raw(),
            occupancy,
        });
    }

    /// Mail can flow the moment a record (re)appears for `agent`.
    fn flush_mail_for(&mut self, ctx: &mut AgentCtx<'_>, agent: AgentId) {
        if self.mailbox.is_empty() {
            return;
        }
        if let Some(&node) = self.records.get(&agent) {
            let items = self.mailbox.take_for(agent);
            if items.is_empty() {
                return;
            }
            let count = items.len();
            let me = ctx.self_id().raw();
            self.shared
                .registry()
                .update_tracker(me, |t| t.mail_flushed += count as u64);
            ctx.trace().emit(ctx.now(), || TraceEvent::MailFlushed {
                tracker: me,
                target: agent.raw(),
                count,
            });
            for item in items {
                self.forward_mail(ctx, agent, node, item.from, item.data);
            }
        }
    }

    /// Age in milliseconds of this tracker's record for `target`: 0 for a
    /// confirmed (authoritative) record, replica age plus time since
    /// resurrection for a recovered-but-unconfirmed one.
    fn record_age_ms(&self, target: AgentId, now: SimTime) -> u64 {
        if !self.stale_records.contains(&target) {
            return 0;
        }
        let since = now.saturating_since(self.stale_recovered_at);
        self.stale_base_age_ms + since.as_millis_f64().ceil() as u64
    }

    /// Serves buffered locates whose records arrived. A pending locate
    /// whose freshness bound the record still fails (a `Fresh` read
    /// against a yet-unconfirmed recovery record, say) keeps waiting for
    /// reconfirmation until its deadline.
    fn flush_pending(&mut self, ctx: &mut AgentCtx<'_>) {
        let mut still = Vec::new();
        for p in std::mem::take(&mut self.pending) {
            let admitted = self
                .records
                .contains_key(&p.target)
                .then(|| self.record_age_ms(p.target, ctx.now()))
                .is_some_and(|age| p.freshness.admits(age));
            if admitted {
                let node = self.records[&p.target];
                self.shared.update(|s| s.pending_served += 1);
                self.answer_located(
                    ctx,
                    p.requester,
                    p.reply_node,
                    p.target,
                    node,
                    p.token,
                    p.corr,
                );
            } else if ctx.now() >= p.deadline {
                self.send_traced(
                    ctx,
                    p.requester,
                    p.reply_node,
                    &Wire::NotFound {
                        target: p.target,
                        token: p.token,
                        corr: p.corr,
                    },
                );
            } else {
                still.push(p);
            }
        }
        self.pending = still;
    }

    /// Answers a locate positively, tagging the answer `stale` when the
    /// record is a recovered-but-unconfirmed one (degraded mode). Callers
    /// must have checked the locate's freshness bound against
    /// [`Self::record_age_ms`] first.
    #[allow(clippy::too_many_arguments)]
    fn answer_located(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        requester: AgentId,
        reply_node: NodeId,
        target: AgentId,
        node: NodeId,
        token: u64,
        corr: Option<CorrId>,
    ) {
        let stale = self.stale_records.contains(&target);
        let age_ms = self.record_age_ms(target, ctx.now());
        if stale {
            let me = ctx.self_id().raw();
            self.shared.update(|s| s.stale_answers += 1);
            ctx.trace().emit(ctx.now(), || TraceEvent::StaleAnswer {
                tracker: me,
                target: target.raw(),
            });
        }
        self.send_traced(
            ctx,
            requester,
            reply_node,
            &Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                corr,
            },
        );
    }

    /// Recomputes where this tracker's replica should live: the sibling
    /// leaf under the current tree, falling back to the standby. A buddy
    /// change marks the set dirty, so splits and merges transfer
    /// replication duty with a prompt full snapshot.
    fn refresh_buddy(&mut self, ctx: &AgentCtx<'_>) {
        if self.config.replication_interval.is_none() {
            return;
        }
        let buddy = self.hf.buddy_of(ctx.self_id()).or(self.standby);
        self.replicator.set_buddy(buddy);
    }

    /// Periodic replication driver: cuts and sends a full-snapshot batch
    /// to the buddy when one is due (dirty + interval elapsed, or an
    /// unacked batch overdue for retry).
    fn maybe_replicate(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(interval) = self.config.replication_interval else {
            return;
        };
        // Nothing authoritative to sync before the first install, and a
        // recovering tracker must not sync under a not-yet-granted epoch.
        if !self.installed
            || matches!(
                self.recovery.as_ref().map(|r| r.phase),
                Some(RecoveryPhase::AwaitEpoch | RecoveryPhase::AwaitReplica)
            )
        {
            return;
        }
        self.refresh_buddy(ctx);
        if !self
            .replicator
            .due(ctx.now(), interval, self.config.replication_retry)
        {
            return;
        }
        let Some((buddy, buddy_node)) = self.replicator.buddy else {
            return;
        };
        let epoch = self.replicator.epoch;
        let seq = self.replicator.cut_batch(ctx.now());
        let records: Vec<(AgentId, NodeId)> = self.records.iter().map(|(&a, &n)| (a, n)).collect();
        let rate = self.stats.rate_per_sec(ctx.now());
        let me = ctx.self_id().raw();
        let count = records.len();
        self.shared.update(|s| s.record_syncs += 1);
        ctx.trace().emit(ctx.now(), || TraceEvent::RecordSync {
            tracker: me,
            buddy: buddy.raw(),
            records: count,
            epoch,
        });
        let reply_node = ctx.node();
        ctx.send(
            buddy,
            buddy_node,
            Wire::RecordSync {
                epoch,
                seq,
                records,
                rate,
                reply_node,
            }
            .payload(),
        );
    }

    /// Drives the recovery phase machine from the periodic timer: retries
    /// lost epoch requests / replica pulls, and ends recovery on
    /// convergence (no stale records left) or timeout.
    fn drive_recovery(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(rec) = &mut self.recovery else {
            return;
        };
        let now = ctx.now();
        let retry = self.config.replication_retry;
        match rec.phase {
            RecoveryPhase::AwaitEpoch => {
                if now.saturating_since(rec.last_request) >= retry {
                    rec.last_request = now;
                    ctx.send(self.hagent, self.hagent_node, Wire::EpochRequest.payload());
                }
            }
            RecoveryPhase::AwaitReplica => {
                if now.saturating_since(rec.last_request) >= retry {
                    rec.last_request = now;
                    if let Some((buddy, buddy_node)) = self.replicator.buddy {
                        let epoch = self.replicator.epoch;
                        let reply_node = ctx.node();
                        ctx.send(
                            buddy,
                            buddy_node,
                            Wire::ReplicaPull { epoch, reply_node }.payload(),
                        );
                    }
                }
            }
            RecoveryPhase::Converging => {}
        }
        self.finish_recovery_if_due(ctx);
    }

    /// Ends recovery the moment it is due: the record set converged (the
    /// phase reached `Converging` and no stale tags remain) or the
    /// recovery timeout expired. Called from the periodic timer and
    /// eagerly from every event that can clear the last stale tag, so
    /// measured recovery times reflect actual convergence rather than the
    /// check-tick quantum.
    fn finish_recovery_if_due(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let now = ctx.now();
        let converged = rec.phase == RecoveryPhase::Converging && self.stale_records.is_empty();
        let timed_out = now.saturating_since(rec.started) >= self.config.recovery_timeout;
        if converged || timed_out {
            let recovered = rec.recovered;
            let stale_left = self.stale_records.len();
            let me = ctx.self_id().raw();
            ctx.trace().emit(now, || TraceEvent::RecoveryEnd {
                tracker: me,
                recovered,
                stale_left,
            });
            self.shared.update(|s| s.recoveries_completed += 1);
            // Whatever is still unconfirmed stays as a best-effort record —
            // no worse than any normal record, which is also just the last
            // reported node — but loses its stale tag.
            self.stale_records.clear();
            self.recovery = None;
            self.flush_pending(ctx);
        }
    }
}

impl Agent for IAgentBehavior {
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        // Locality migration landed: tell the HAgent so the directory (and
        // through it, every refreshed copy) knows the new node.
        self.relocating = false;
        let here = ctx.node();
        self.shared.update(|s| s.iagent_moves += 1);
        self.send_hagent(ctx, &Wire::IAgentMoved { node: here });
    }

    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.created_at = ctx.now();
        self.last_audit = ctx.now();
        if self.installed {
            self.shared
                .record_version(ctx.self_id().raw(), CopyRole::Tracker, self.hf.version);
        }
        if self.fresh {
            let lease = self.lease;
            self.send_hagent(ctx, &Wire::IAgentReady { lease });
        }
        ctx.set_timer(self.config.check_interval);
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        if lost_soft_state {
            // Soft state is gone: every record, buffered locate and
            // buffered mail this tracker held. The records repair
            // themselves as agents keep sending movement updates; the
            // mail is lost for good, which must show in the metrics.
            let lost = self.mailbox.len();
            if lost > 0 {
                let me = ctx.self_id().raw();
                self.shared
                    .registry()
                    .update_tracker(me, |t| t.mail_lost += lost as u64);
                ctx.trace()
                    .emit(ctx.now(), || TraceEvent::MailExpired { tracker: me, lost });
            }
            self.mailbox.drain_if(|_| true);
            self.records.clear();
            self.pending.clear();
            self.preinstall.clear();
            self.unplaced.clear();
            self.origin_counts.clear();
            self.stats.reset(ctx.now());
            // Replica copies held for buddies died with the soft state
            // too; their owners keep syncing and will repopulate them.
            self.replica_store.clear();
            self.stale_records.clear();
            self.recovery = None;
            if self.config.replication_interval.is_some() && self.installed {
                // Enter recovery: fence with a fresh epoch from the
                // HAgent, pull the buddy's replica, and answer locates in
                // degraded mode until the record set converges.
                self.recovery = Some(RecoveryState::new(ctx.now()));
                let me = ctx.self_id().raw();
                self.shared.update(|s| s.recoveries_started += 1);
                ctx.trace()
                    .emit(ctx.now(), || TraceEvent::RecoveryStart { tracker: me });
                self.send_hagent(ctx, &Wire::EpochRequest);
            }
        }
        // Any replication batch in flight died with the node; mark dirty so
        // the surviving (or recovered) record set is re-synced.
        self.replicator.mark_dirty();
        // The hash-function copy is treated as recoverable (re-read from
        // stable store on boot); whatever it missed while down, lazy
        // refresh or the version audit repairs. In-flight control state
        // died with the node either way.
        self.refetch_in_flight = false;
        self.rehash_request = None;
        self.last_audit = ctx.now();
        ctx.set_timer(self.config.check_interval);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        let lost = self.mailbox.expire(ctx.now());
        if lost > 0 {
            // Guaranteed delivery just failed silently for `lost` messages:
            // make the loss visible to the registry and the event trace.
            let me = ctx.self_id().raw();
            self.shared
                .registry()
                .update_tracker(me, |t| t.mail_lost += lost as u64);
            ctx.trace()
                .emit(ctx.now(), || TraceEvent::MailExpired { tracker: me, lost });
        }
        // Expire old tombstones: any straggler from the dead sender has
        // long since drained, and the key may be reused.
        let now = ctx.now();
        self.departed
            .retain(|_, &mut at| now.saturating_since(at) < TOMBSTONE_TTL);
        // Batched gauge refresh: per-message paths touch no lock.
        {
            let me = ctx.self_id().raw();
            let requests = self.requests_seen;
            let rate = self.stats.rate_per_sec(ctx.now());
            let queue_depth = self.pending.len();
            let mailbox_occupancy = self.mailbox.len();
            let records_held = self.records.len();
            self.shared.registry().update_tracker(me, |t| {
                t.requests = requests;
                t.rate_per_sec = rate;
                t.observe_queue_depth(queue_depth);
                t.observe_mailbox(mailbox_occupancy);
                t.records_held = records_held;
            });
        }
        self.flush_pending(ctx);
        self.maybe_replicate(ctx);
        self.drive_recovery(ctx);
        // Unplaced handoff records must not wait forever: if the refetch
        // reply was lost (or bounced off our old node after a locality
        // migration), ask again.
        if !self.unplaced.is_empty()
            && (!self.refetch_in_flight
                || ctx.now().saturating_since(self.refetch_sent_at)
                    > self.config.locate_retry_timeout)
        {
            self.refetch_in_flight = true;
            self.refetch_sent_at = ctx.now();
            let have_version = self.hf.version;
            let reply_node = ctx.node();
            self.send_hagent(
                ctx,
                &Wire::FetchHashFn {
                    have_version,
                    reply_node,
                },
            );
        }
        // Periodic version audit (chaos runs): re-fetch the primary copy
        // so a view that went stale while this node (or the wire to the
        // HAgent) was faulted converges without waiting for client
        // traffic to trip a NotResponsible.
        if let Some(interval) = self.config.version_audit {
            if self.installed
                && !self.refetch_in_flight
                && self.unplaced.is_empty()
                && ctx.now().saturating_since(self.last_audit) >= interval
            {
                self.last_audit = ctx.now();
                let have_version = self.hf.version;
                let reply_node = ctx.node();
                self.send_hagent(
                    ctx,
                    &Wire::FetchHashFn {
                        have_version,
                        reply_node,
                    },
                );
            }
        }
        self.maybe_request_merge(ctx);
        self.maybe_relocate(ctx);
        // A rehash request whose answer was lost must not wedge this IAgent
        // forever. Give up only after the HAgent's own lease timeout (plus
        // its commit cooldown) has certainly passed: re-asking earlier
        // would race a lease that is still live on the HAgent and get a
        // pointless Busy denial for this tracker's own region.
        if let Some(at) = self.rehash_request {
            if ctx.now().saturating_since(at)
                > self.config.rehash_lease_timeout() + self.config.rehash_cooldown
            {
                self.rehash_request = None;
            }
        }
        // A fresh IAgent that never got installed was orphaned by a failed
        // split; retire it.
        if self.fresh
            && !self.installed
            && ctx.now().saturating_since(self.created_at) > self.config.rate_window * 10
        {
            ctx.dispose();
            return;
        }
        ctx.set_timer(self.config.check_interval);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        // Client traffic that beats the first install is buffered, not
        // bounced: answering NotResponsible here would send freshly-resolved
        // clients into a refresh loop against the already-committed tree.
        if !self.installed
            && matches!(
                msg,
                Wire::Register { .. } | Wire::Update { .. } | Wire::Locate { .. }
            )
        {
            self.preinstall.push((from, msg));
            return;
        }
        self.handle_wire(ctx, from, msg);
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) {
        // A MailDrop bounced: the recipient left its recorded node before
        // the mail landed. Re-buffer it; the next update releases it (this
        // retry loop is the delivery guarantee). The record is left alone:
        // an Update may have refreshed it while the mail was in flight,
        // and a stale record corrects itself on the next update anyway.
        if let Some(Wire::MailDrop { from, data }) = Wire::from_payload(payload) {
            self.buffer_mail(ctx, _to, from, data);
            return;
        }
        // A re-registration solicit bounced: the resurrected record points
        // at a node its agent has left (or the agent is gone for good).
        // Drop it rather than keep serving a known-bad location.
        if let Some(Wire::SolicitReregister) = Wire::from_payload(payload) {
            if self.stale_records.remove(&_to) {
                self.records.remove(&_to);
                self.stats.forget(_to);
                self.replicator.mark_dirty();
                self.finish_recovery_if_due(ctx);
            }
            return;
        }
        // Only bounced handoffs need recovery (the destination IAgent was
        // merged away mid-flight): refetch the hash function and
        // re-dispatch. Replies to clients that moved or died are dropped —
        // the client retries on its own timeout.
        if let Some(Wire::Handoff { records }) = Wire::from_payload(payload) {
            self.unplaced.extend(records);
            if !self.refetch_in_flight {
                self.refetch_in_flight = true;
                self.refetch_sent_at = ctx.now();
                let have_version = self.hf.version;
                let reply_node = ctx.node();
                self.send_hagent(
                    ctx,
                    &Wire::FetchHashFn {
                        have_version,
                        reply_node,
                    },
                );
            }
        }
    }
}

impl IAgentBehavior {
    fn handle_wire(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, msg: Wire) {
        match msg {
            Wire::Register { agent, node } => {
                self.requests_seen += 1;
                self.stats.record(ctx.now(), agent);
                self.note_origin(node);
                if self.departed.contains_key(&agent) {
                    // A straggler that raced its sender's deregister: the
                    // agent is dead, and re-inserting would leak its record.
                } else if self.installed && self.is_mine(ctx, agent) {
                    self.records.insert(agent, node);
                    // A fresh registration reconfirms a recovered record.
                    self.stale_records.remove(&agent);
                    self.replicator.mark_dirty();
                    ctx.send(from, node, Wire::RegisterAck { agent }.payload());
                    self.flush_pending(ctx);
                    self.flush_mail_for(ctx, agent);
                    self.finish_recovery_if_due(ctx);
                } else {
                    self.shared.update(|s| s.stale_hits += 1);
                    ctx.send(
                        from,
                        node,
                        Wire::NotResponsible {
                            about: agent,
                            token: None,
                            corr: None,
                        }
                        .payload(),
                    );
                }
                self.maybe_request_split(ctx);
            }
            Wire::Update { agent, node } => {
                self.requests_seen += 1;
                self.stats.record(ctx.now(), agent);
                self.note_origin(node);
                if self.departed.contains_key(&agent) {
                    // See the `Register` arm: a dead sender's late update
                    // must not resurrect the record.
                } else if self.installed && self.is_mine(ctx, agent) {
                    self.records.insert(agent, node);
                    self.stale_records.remove(&agent);
                    self.replicator.mark_dirty();
                    self.flush_pending(ctx);
                    self.flush_mail_for(ctx, agent);
                    self.finish_recovery_if_due(ctx);
                } else {
                    self.shared.update(|s| s.stale_hits += 1);
                    ctx.send(
                        from,
                        node,
                        Wire::NotResponsible {
                            about: agent,
                            token: None,
                            corr: None,
                        }
                        .payload(),
                    );
                }
                self.maybe_request_split(ctx);
            }
            Wire::Locate {
                target,
                token,
                reply_node,
                freshness,
                corr,
            } => {
                self.requests_seen += 1;
                self.stats.record(ctx.now(), target);
                self.note_origin(reply_node);
                if self.installed && self.is_mine(ctx, target) {
                    let age = self
                        .records
                        .contains_key(&target)
                        .then(|| self.record_age_ms(target, ctx.now()));
                    match age {
                        Some(age) if freshness.admits(age) => {
                            let node = self.records[&target];
                            self.answer_located(ctx, from, reply_node, target, node, token, corr);
                        }
                        too_old_or_missing => {
                            // Missing: possibly a handoff in flight —
                            // buffer briefly. Too old for the declared
                            // bound: wait for a reconfirming update
                            // instead of breaking the bound. While
                            // recovering, hold until recovery ends — a
                            // late degraded answer beats a premature
                            // NotFound.
                            if too_old_or_missing.is_some() {
                                self.shared.update(|s| s.freshness_refusals += 1);
                            }
                            let normal = ctx.now() + self.config.pending_timeout;
                            let deadline = match &self.recovery {
                                Some(rec) => normal.max(rec.started + self.config.recovery_timeout),
                                None => normal,
                            };
                            self.pending.push(PendingLocate {
                                target,
                                requester: from,
                                reply_node,
                                token,
                                freshness,
                                corr,
                                deadline,
                            });
                        }
                    }
                } else {
                    // Freshness-bounded reads may be served from a buddy
                    // replica held here: under a severed inter-region
                    // link this is what keeps bounded locates local.
                    // Plain (`Any`) locates keep the seed behaviour — a
                    // NotResponsible bounce drives the querier's
                    // hash-function refresh — and `Fresh` means
                    // authoritative only, so neither consults replicas.
                    let mut replied = false;
                    if matches!(freshness, Freshness::BoundedMs(_)) {
                        if let Some((node, age)) = self.replica_store.find(target, ctx.now()) {
                            if freshness.admits(age) {
                                let me = ctx.self_id().raw();
                                self.shared.update(|s| s.replica_answers += 1);
                                ctx.trace().emit(ctx.now(), || TraceEvent::StaleAnswer {
                                    tracker: me,
                                    target: target.raw(),
                                });
                                self.send_traced(
                                    ctx,
                                    from,
                                    reply_node,
                                    &Wire::Located {
                                        target,
                                        node,
                                        stale: true,
                                        age_ms: age,
                                        token,
                                        corr,
                                    },
                                );
                                replied = true;
                            } else {
                                self.shared.update(|s| s.freshness_refusals += 1);
                            }
                        }
                    }
                    if !replied {
                        self.shared.update(|s| s.stale_hits += 1);
                        self.send_traced(
                            ctx,
                            from,
                            reply_node,
                            &Wire::NotResponsible {
                                about: target,
                                token: Some(token),
                                corr,
                            },
                        );
                    }
                }
                self.maybe_request_split(ctx);
            }
            Wire::DeliverVia {
                target,
                from: origin,
                data,
                ttl,
            } => {
                self.requests_seen += 1;
                self.stats.record(ctx.now(), target);
                if self.is_mine(ctx, target) {
                    match self.records.get(&target) {
                        Some(&node) => self.forward_mail(ctx, target, node, origin, data),
                        // Unknown right now (mid-handoff or mid-flight):
                        // hold it; the next update releases it.
                        None => self.buffer_mail(ctx, target, origin, data),
                    }
                } else if ttl > 0 {
                    // Stale sender copy: chase toward the responsible
                    // tracker under our (fresher) view.
                    let (owner, node) = self.hf.resolve(target);
                    ctx.send(
                        owner,
                        node,
                        Wire::DeliverVia {
                            target,
                            from: origin,
                            data,
                            ttl: ttl - 1,
                        }
                        .payload(),
                    );
                }
                self.maybe_request_split(ctx);
            }
            Wire::Deregister { agent, ttl } => {
                self.requests_seen += 1;
                self.stats.record(ctx.now(), agent);
                let removed = self.records.remove(&agent).is_some();
                self.stale_records.remove(&agent);
                self.departed.insert(agent, ctx.now());
                self.replicator.mark_dirty();
                self.stats.forget(agent);
                if !removed && self.installed && !self.is_mine(ctx, agent) && ttl > 0 {
                    // The dying agent's stale hash copy aimed this at the
                    // pre-split owner. The sender is already gone, so
                    // there is nobody to bounce NotResponsible to — chase
                    // toward the responsible tracker ourselves, or its
                    // record leaks forever.
                    let (owner, node) = self.hf.resolve(agent);
                    if owner != ctx.self_id() {
                        ctx.send(
                            owner,
                            node,
                            Wire::Deregister {
                                agent,
                                ttl: ttl - 1,
                            }
                            .payload(),
                        );
                    }
                }
                self.finish_recovery_if_due(ctx);
                self.maybe_request_split(ctx);
            }
            Wire::InstallHashFn { hf } => self.install(ctx, hf),
            Wire::Handoff { records } => {
                // A handoff computed under an older version may include
                // keys that have since moved on; forward those instead of
                // parking them on a non-responsible tracker.
                let (mine, foreign): (Vec<_>, Vec<_>) = records
                    .into_iter()
                    // Tombstoned keys are dropped outright: the agent
                    // deregistered while its record was in transit.
                    .filter(|(agent, _)| !self.departed.contains_key(agent))
                    .partition(|&(agent, _)| self.installed && self.is_mine(ctx, agent));
                let agents: Vec<AgentId> = mine.iter().map(|&(a, _)| a).collect();
                if !agents.is_empty() {
                    self.replicator.mark_dirty();
                }
                for (agent, node) in mine {
                    // A direct update that already landed here is fresher
                    // than the handed-off record.
                    self.records.entry(agent).or_insert(node);
                }
                self.dispatch_handoffs(ctx, foreign);
                self.flush_pending(ctx);
                for agent in agents {
                    self.flush_mail_for(ctx, agent);
                }
            }
            Wire::RehashDenied { reason } => {
                self.rehash_request = None;
                let backoff = match reason {
                    // The pipeline (or this subtree's lease) is busy: the
                    // conflicting rehash commits shortly, so retry fast —
                    // the rate that justified this request is still there.
                    DenyReason::Busy => self.config.bounce_retry_delay,
                    DenyReason::Cooldown | DenyReason::NoPlan => self.config.rehash_cooldown,
                    // Read-only standby: the tree is frozen until the
                    // primary returns; hammering the standby is futile.
                    DenyReason::ReadOnly => self.config.rehash_lease_timeout(),
                };
                self.rehash_backoff_until = ctx.now() + backoff;
            }
            Wire::HashFnCopy { hf } => {
                // Answer to a refetch after a bounced handoff. Re-dispatch
                // only under a *newer* view — the same version would resend
                // to the destination that just bounced (hot loop); the
                // periodic check refetches until the view advances.
                self.refetch_in_flight = false;
                if hf.version > self.hf.version {
                    self.install(ctx, hf);
                    let unplaced = std::mem::take(&mut self.unplaced);
                    self.dispatch_handoffs(ctx, unplaced);
                }
            }
            Wire::RecordSync {
                epoch,
                seq,
                records,
                rate,
                reply_node,
            } => {
                // Buddy duty: store the copy and ack. The replica stays in
                // its own store — it is not ownership and must not leak
                // into `records` or the records_held gauge.
                self.replica_store
                    .apply_sync(from, epoch, seq, records, rate, ctx.now());
                ctx.send(
                    from,
                    reply_node,
                    Wire::RecordSyncAck { epoch, seq }.payload(),
                );
            }
            Wire::RecordSyncAck { epoch, seq } => {
                self.replicator.on_ack(epoch, seq);
            }
            Wire::ReplicaPull {
                epoch: _,
                reply_node,
            } => {
                // Serve whatever we hold for the puller, stamped as
                // written; the puller fences against its fresh epoch.
                let (epoch, seq, records, rate, age_ms) = match self.replica_store.get(from) {
                    Some(e) => (
                        e.epoch,
                        e.seq,
                        e.records.iter().map(|(&a, &n)| (a, n)).collect(),
                        e.rate,
                        e.age_ms(ctx.now()),
                    ),
                    None => (0, 0, Vec::new(), 0.0, 0),
                };
                ctx.send(
                    from,
                    reply_node,
                    Wire::ReplicaSet {
                        epoch,
                        seq,
                        records,
                        rate,
                        age_ms,
                    }
                    .payload(),
                );
            }
            Wire::EpochGrant { epoch, buddy } => {
                let now = ctx.now();
                let Some(rec) = &mut self.recovery else {
                    // Late duplicate grant: adopt the epoch anyway so
                    // future syncs are stamped under the latest one.
                    self.replicator.start_epoch(epoch);
                    return;
                };
                if rec.phase != RecoveryPhase::AwaitEpoch {
                    return; // duplicate grant mid-recovery
                }
                self.replicator.start_epoch(epoch);
                match buddy {
                    Some((b, b_node)) => {
                        rec.phase = RecoveryPhase::AwaitReplica;
                        rec.last_request = now;
                        self.replicator.set_buddy(Some((b, b_node)));
                        let reply_node = ctx.node();
                        ctx.send(b, b_node, Wire::ReplicaPull { epoch, reply_node }.payload());
                    }
                    None => {
                        // Nowhere a replica could live: converge on
                        // re-registration traffic alone.
                        rec.phase = RecoveryPhase::Converging;
                        self.finish_recovery_if_due(ctx);
                    }
                }
            }
            Wire::ReplicaSet {
                epoch,
                seq: _,
                records,
                rate: _,
                age_ms,
            } => {
                if !matches!(
                    self.recovery.as_ref().map(|r| r.phase),
                    Some(RecoveryPhase::AwaitReplica)
                ) {
                    return; // unsolicited or duplicate
                }
                let mut recovered = 0usize;
                if replica_usable(epoch, self.replicator.epoch) {
                    for (agent, node) in records {
                        // Ownership filter: only records that still hash
                        // here under the current view may be resurrected —
                        // this is what stops a stale replica from undoing
                        // a handoff that happened after it was written.
                        if self.installed
                            && self.is_mine(ctx, agent)
                            && !self.records.contains_key(&agent)
                        {
                            self.records.insert(agent, node);
                            self.stale_records.insert(agent);
                            recovered += 1;
                            // Ask the agent to reconfirm from wherever it
                            // really is. Best effort: a bounce drops the
                            // resurrected record again (see
                            // on_delivery_failed).
                            ctx.send(agent, node, Wire::SolicitReregister.payload());
                        }
                    }
                }
                if recovered > 0 {
                    // Resurrected records inherit the replica's age as
                    // their staleness base; bounded reads see the whole
                    // authoritative-to-replica gap, not just the time
                    // since resurrection.
                    self.stale_recovered_at = ctx.now();
                    self.stale_base_age_ms = age_ms;
                }
                if let Some(rec) = &mut self.recovery {
                    rec.phase = RecoveryPhase::Converging;
                    rec.recovered += recovered;
                }
                self.replicator.mark_dirty();
                self.flush_pending(ctx);
                self.finish_recovery_if_due(ctx);
            }
            _ => {}
        }
    }
}
