//! The forwarding-pointers baseline: a Voyager-style scheme.
//!
//! Voyager (paper §6) locates agents by following forwarding pointers:
//! "these nodes will forward the request until the agent is reached". We
//! model one forwarder agent per node. An agent arriving at a node tells
//! the local forwarder "I am here" and deposits a pointer at the node it
//! left; a locate starts at the target's birth node (known from its name)
//! and walks the pointer chain hop by hop.
//!
//! The chain from the birth node grows with the number of moves the target
//! has made since it was last "short-cut", which is what makes this scheme
//! degrade with mobility rate — the contrast the extended baseline panel
//! (experiment E7) shows against the hash-based mechanism.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, Spawner, TimerId};
use agentrack_sim::{CorrId, GiveUpCause, MetricsRegistry, TraceEvent};

use crate::config::LocationConfig;
use crate::retry::{LocateTracker, Retry};
use crate::scheme::{
    ClientEvent, ClientFactory, DirectoryClient, LocationScheme, SchemeStats, SharedSchemeStats,
};
use crate::wire::Wire;

/// Longest pointer chain a locate will follow before giving up the
/// attempt (the client retries from the birth node).
const MAX_CHAIN_HOPS: u32 = 64;

/// What a forwarder knows about an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pointer {
    /// The agent is resident at this node.
    Here,
    /// The agent left this node for the given one.
    MovedTo(NodeId),
}

/// Behaviour of a per-node forwarder.
#[derive(Debug)]
pub struct ForwarderBehavior {
    /// Forwarder directory (index = node), for chain forwarding.
    forwarders: Arc<Vec<AgentId>>,
    pointers: HashMap<AgentId, Pointer>,
    shared: SharedSchemeStats,
}

impl ForwarderBehavior {
    /// Creates an empty forwarder knowing its peers.
    #[must_use]
    pub fn new(forwarders: Arc<Vec<AgentId>>, shared: SharedSchemeStats) -> Self {
        ForwarderBehavior {
            forwarders,
            pointers: HashMap::new(),
            shared,
        }
    }
}

impl Agent for ForwarderBehavior {
    fn on_restart(&mut self, _ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        if lost_soft_state {
            // Forwarding keeps no authoritative copy anywhere: a pointer
            // lost here is lost for good. Agents that re-announce from
            // this node reappear, but chains that *passed through* this
            // forwarder are severed permanently — the scheme's known
            // fault-tolerance gap.
            self.pointers.clear();
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        match msg {
            // "I am here": an agent arrived at this node.
            Wire::Register { agent, node } | Wire::Update { agent, node } => {
                debug_assert_eq!(node, ctx.node());
                self.pointers.insert(agent, Pointer::Here);
                ctx.send(from, node, Wire::RegisterAck { agent }.payload());
            }
            Wire::LeavePointer { agent, to } => {
                self.pointers.insert(agent, Pointer::MovedTo(to));
            }
            Wire::Deregister { agent, .. } => {
                self.pointers.remove(&agent);
            }
            Wire::ChainLocate {
                target,
                token,
                reply_to,
                reply_node,
                hops,
                corr,
            } => {
                let me = ctx.self_id();
                {
                    let here = ctx.node();
                    let queued = ctx.queued();
                    ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                        kind: "ChainLocate",
                        corr,
                        by: me.raw(),
                        node: here,
                        queued,
                    });
                }
                match self.pointers.get(&target) {
                    Some(Pointer::Here) => {
                        let here = ctx.node();
                        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                            kind: "Located",
                            corr,
                            from: me.raw(),
                            to: reply_to.raw(),
                            node: reply_node,
                        });
                        ctx.send(
                            reply_to,
                            reply_node,
                            Wire::Located {
                                target,
                                node: here,
                                stale: false,
                                age_ms: 0,
                                token,
                                corr,
                            }
                            .payload(),
                        );
                    }
                    Some(Pointer::MovedTo(next)) if hops < MAX_CHAIN_HOPS => {
                        self.shared.update(|s| s.chain_hops += 1);
                        let next_fw = self.forwarders[next.index()];
                        let next_node = *next;
                        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                            kind: "ChainLocate",
                            corr,
                            from: me.raw(),
                            to: next_fw.raw(),
                            node: next_node,
                        });
                        ctx.send(
                            next_fw,
                            next_node,
                            Wire::ChainLocate {
                                target,
                                token,
                                reply_to,
                                reply_node,
                                hops: hops + 1,
                                corr,
                            }
                            .payload(),
                        );
                    }
                    _ => {
                        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                            kind: "NotFound",
                            corr,
                            from: me.raw(),
                            to: reply_to.raw(),
                            node: reply_node,
                        });
                        ctx.send(
                            reply_to,
                            reply_node,
                            Wire::NotFound {
                                target,
                                token,
                                corr,
                            }
                            .payload(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Birth-node table standing in for name-embedded origin information.
type NameTable = Arc<RwLock<HashMap<AgentId, NodeId>>>;

/// The forwarding-pointers location scheme: one forwarder per node.
#[derive(Debug)]
pub struct ForwardingScheme {
    config: LocationConfig,
    shared: SharedSchemeStats,
    forwarders: Arc<Vec<AgentId>>,
    names: NameTable,
    bootstrapped: bool,
}

impl ForwardingScheme {
    /// Creates the scheme.
    #[must_use]
    pub fn new(config: LocationConfig) -> Self {
        ForwardingScheme {
            config,
            shared: SharedSchemeStats::new(),
            forwarders: Arc::new(Vec::new()),
            names: Arc::default(),
            bootstrapped: false,
        }
    }
}

impl LocationScheme for ForwardingScheme {
    fn name(&self) -> &'static str {
        "forwarding"
    }

    fn bootstrap(&mut self, platform: &mut dyn Spawner) {
        assert!(!self.bootstrapped, "bootstrap called twice");
        // Forwarders need each other's ids: pre-name them (sequential id
        // assignment), then spawn.
        let base = platform.next_agent_id();
        let node_count = platform.node_count();
        let ids: Vec<AgentId> = (0..node_count)
            .map(|i| AgentId::new(base + u64::from(i)))
            .collect();
        let shared_ids = Arc::new(ids.clone());
        for (i, &expected) in ids.iter().enumerate() {
            let spawned = platform.spawn_agent(
                Box::new(ForwarderBehavior::new(
                    Arc::clone(&shared_ids),
                    self.shared.clone(),
                )),
                NodeId::new(i as u32),
            );
            assert_eq!(spawned, expected, "agent id assignment drifted");
        }
        self.shared.set_trackers(node_count as u64);
        self.forwarders = shared_ids;
        self.bootstrapped = true;
    }

    fn client_factory(&self) -> ClientFactory {
        assert!(self.bootstrapped, "client_factory before bootstrap");
        let config = self.config.clone();
        let forwarders = Arc::clone(&self.forwarders);
        let names = Arc::clone(&self.names);
        let registry = self.shared.registry().clone();
        Arc::new(move || {
            Box::new(
                ForwardingClient::new(config.clone(), Arc::clone(&forwarders), Arc::clone(&names))
                    .with_registry(registry.clone()),
            )
        })
    }

    fn stats(&self) -> SchemeStats {
        self.shared.snapshot()
    }

    fn registry(&self) -> MetricsRegistry {
        self.shared.registry().clone()
    }
}

/// Client-side state machine of the forwarding scheme.
#[derive(Debug)]
pub struct ForwardingClient {
    config: LocationConfig,
    forwarders: Arc<Vec<AgentId>>,
    names: NameTable,
    birth: Option<NodeId>,
    prev_node: Option<NodeId>,
    registered: bool,
    tracker: LocateTracker,
    registry: MetricsRegistry,
}

impl ForwardingClient {
    /// Creates a client over the per-node forwarders and the shared birth
    /// table.
    #[must_use]
    pub fn new(config: LocationConfig, forwarders: Arc<Vec<AgentId>>, names: NameTable) -> Self {
        ForwardingClient {
            config,
            forwarders,
            names,
            birth: None,
            prev_node: None,
            registered: false,
            tracker: LocateTracker::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Reports locate latencies into the given registry (the scheme's
    /// shared one) instead of a detached default.
    #[must_use]
    pub fn with_registry(mut self, registry: MetricsRegistry) -> Self {
        self.registry = registry;
        self
    }

    fn forwarder_at(&self, node: NodeId) -> (AgentId, NodeId) {
        (self.forwarders[node.index()], node)
    }

    fn announce_here(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        let here = ctx.node();
        let (fw, node) = self.forwarder_at(here);
        let msg = if self.registered {
            Wire::Update {
                agent: me,
                node: here,
            }
        } else {
            Wire::Register {
                agent: me,
                node: here,
            }
        };
        ctx.send(fw, node, msg.payload());
    }

    fn send_locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        let birth = self.names.read().get(&target).copied();
        if let Some(birth) = birth {
            let (fw, node) = self.forwarder_at(birth);
            let me = ctx.self_id();
            let here = ctx.node();
            let msg = Wire::ChainLocate {
                target,
                token,
                reply_to: me,
                reply_node: here,
                hops: 0,
                corr: Some(CorrId::new(me.raw(), token)),
            };
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                kind: msg.kind(),
                corr: msg.corr(),
                from: me.raw(),
                to: fw.raw(),
                node: here,
            });
            ctx.send(fw, node, msg.payload());
            self.tracker.note_tracker(token, fw.raw(), node);
        }
        self.tracker
            .arm_timer(ctx, self.config.locate_retry_timeout, token);
    }

    fn act(&mut self, ctx: &mut AgentCtx<'_>, decision: Retry) -> ClientEvent {
        let me = ctx.self_id();
        match decision {
            Retry::Again { token, target } => {
                let attempt = self.tracker.attempts(token).unwrap_or(0);
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryAttempt {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempt,
                });
                self.send_locate(ctx, target, token);
                ClientEvent::Consumed
            }
            Retry::GiveUp {
                token,
                target,
                cause,
                tracker,
                tracker_node,
            } => {
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryGiveUp {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempts: self.config.max_locate_attempts,
                    cause,
                });
                if let Some(tracker) = tracker {
                    let remote = tracker_node.is_some_and(|n| n != ctx.node());
                    self.registry.update_tracker(tracker, |t| match cause {
                        GiveUpCause::Timeout => {
                            t.giveup_timeout += 1;
                            if remote {
                                t.giveup_timeout_remote += 1;
                            }
                        }
                        GiveUpCause::Negative => {
                            t.giveup_negative += 1;
                            if remote {
                                t.giveup_negative_remote += 1;
                            }
                        }
                    });
                }
                ClientEvent::Failed { token, target }
            }
            Retry::Nothing => ClientEvent::Consumed,
        }
    }

    fn retry_locate(&mut self, ctx: &mut AgentCtx<'_>, token: u64) -> ClientEvent {
        let decision = self
            .tracker
            .on_negative(token, self.config.max_locate_attempts);
        self.act(ctx, decision)
    }
}

impl DirectoryClient for ForwardingClient {
    fn register(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        let here = ctx.node();
        if self.birth.is_none() {
            self.birth = Some(here);
            self.prev_node = Some(here);
            self.names.write().insert(me, here);
        }
        self.announce_here(ctx);
    }

    fn moved(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.registered {
            self.register(ctx);
            return;
        }
        let me = ctx.self_id();
        let here = ctx.node();
        // Deposit the pointer at the node we left, then announce here.
        if let Some(prev) = self.prev_node.replace(here) {
            if prev != here {
                let (fw, node) = self.forwarder_at(prev);
                ctx.send(
                    fw,
                    node,
                    Wire::LeavePointer {
                        agent: me,
                        to: here,
                    }
                    .payload(),
                );
            }
        }
        self.announce_here(ctx);
    }

    fn deregister(&mut self, ctx: &mut AgentCtx<'_>) {
        // Drop the "Here" pointer at the current node and the birth entry;
        // stale MovedTo pointers along the old trail expire into NotFound.
        let me = ctx.self_id();
        let here = ctx.node();
        let (fw, node) = self.forwarder_at(here);
        ctx.send(fw, node, Wire::Deregister { agent: me, ttl: 0 }.payload());
        if let Some(birth) = self.birth {
            if birth != here {
                let (fw, node) = self.forwarder_at(birth);
                ctx.send(fw, node, Wire::Deregister { agent: me, ttl: 0 }.payload());
            }
        }
        self.names.write().remove(&me);
    }

    fn locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        self.locate_with(ctx, target, token, crate::wire::Freshness::Any);
    }

    fn locate_with(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        freshness: crate::wire::Freshness,
    ) {
        // A chain walk always ends at the node the target is resident on,
        // so every answer is authoritative (age 0) and any bound holds.
        self.tracker.start_with(token, target, ctx.now(), freshness);
        self.send_locate(ctx, target, token);
    }

    fn on_message(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _from: AgentId,
        payload: &Payload,
    ) -> ClientEvent {
        let Some(msg) = Wire::from_payload(payload) else {
            return ClientEvent::NotMine;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        match msg {
            Wire::RegisterAck { agent } => {
                if agent == ctx.self_id() && !self.registered {
                    self.registered = true;
                    ClientEvent::Registered
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                ..
            } => {
                if let Some(started) = self.tracker.complete(token) {
                    self.registry
                        .record_locate(ctx.now().saturating_since(started));
                    ClientEvent::Located {
                        token,
                        target,
                        node,
                        stale,
                        age_ms,
                    }
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::NotFound { token, .. } => self.retry_locate(ctx, token),
            _ => ClientEvent::NotMine,
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) -> ClientEvent {
        match Wire::from_payload(payload) {
            Some(Wire::Update { .. } | Wire::Register { .. }) => {
                self.announce_here(ctx);
                ClientEvent::Consumed
            }
            Some(_) => ClientEvent::Consumed,
            None => ClientEvent::NotMine,
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) -> ClientEvent {
        match self
            .tracker
            .on_timer(timer, self.config.max_locate_attempts)
        {
            Some(decision) => self.act(ctx, decision),
            None => ClientEvent::NotMine,
        }
    }
}
