//! Record durability: buddy replication state and epoch-fenced recovery.
//!
//! The paper replicates only the hash *function* (HAgent standby, lazy
//! LHAgent copies); the location *records* are soft state, and a tracker
//! crash makes every settled agent it served unlocatable until the agent
//! happens to move again. This module holds the state machines that close
//! that gap:
//!
//! * [`Replicator`] — the outbound side: an IAgent batches its full record
//!   set into version-stamped `RecordSync` messages for its **buddy
//!   replica** (the sibling leaf under the hash tree, or the configured
//!   standby when the tree has one leaf), with ack/retry.
//! * [`ReplicaStore`] — the inbound side: the replica copies a tracker
//!   holds on behalf of others, stamped with the owner's `(epoch, seq)`.
//! * [`RecoveryState`] — the phase machine a restarted tracker runs after
//!   soft-state loss: get a fresh epoch from the HAgent (fencing out
//!   replicas written by incarnations whose ownership was since handed
//!   off), pull the buddy's replica, solicit re-registrations, and answer
//!   locates from stale records until the set converges.

use std::collections::{BTreeMap, HashMap};

use agentrack_platform::{AgentId, NodeId};
use agentrack_sim::SimTime;

/// Outbound replication state of one IAgent.
#[derive(Debug, Default)]
pub struct Replicator {
    /// Where this tracker's replica lives (sibling leaf, or standby).
    pub buddy: Option<(AgentId, NodeId)>,
    /// The tracker's current epoch, granted by the HAgent. Epoch 0 is the
    /// first incarnation; every soft-state-losing restart bumps it.
    pub epoch: u64,
    /// Monotonic batch number of the next `RecordSync` within the epoch.
    next_seq: u64,
    /// Records changed since the last batch was cut.
    dirty: bool,
    /// The unacknowledged batch in flight: `(seq, sent_at)`.
    in_flight: Option<(u64, SimTime)>,
    /// When the last batch was sent (rate-limits full-snapshot syncs).
    last_sync: SimTime,
}

impl Replicator {
    /// Marks the record set changed; the next sync window sends a batch.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Points replication at a (possibly new) buddy. A buddy change marks
    /// the set dirty so the new buddy receives a full snapshot promptly —
    /// this is how splits and merges transfer replication duty.
    pub fn set_buddy(&mut self, buddy: Option<(AgentId, NodeId)>) {
        if self.buddy != buddy {
            self.buddy = buddy;
            self.in_flight = None;
            if buddy.is_some() {
                self.dirty = true;
            }
        }
    }

    /// Decides whether a batch should go out now: there is a buddy, and
    /// either dirty records have waited out the sync interval, or the
    /// in-flight batch is overdue for a retry.
    #[must_use]
    pub fn due(
        &self,
        now: SimTime,
        interval: agentrack_sim::SimDuration,
        retry: agentrack_sim::SimDuration,
    ) -> bool {
        if self.buddy.is_none() {
            return false;
        }
        match self.in_flight {
            Some((_, sent_at)) => now.saturating_since(sent_at) >= retry,
            None => self.dirty && now.saturating_since(self.last_sync) >= interval,
        }
    }

    /// Cuts a batch: returns the seq to stamp it with and records it as
    /// in flight.
    pub fn cut_batch(&mut self, now: SimTime) -> u64 {
        let seq = match self.in_flight {
            // A retry re-sends under a fresh seq so a late ack of the
            // lost batch cannot be mistaken for the retry's.
            Some(_) | None => {
                self.next_seq += 1;
                self.next_seq
            }
        };
        self.in_flight = Some((seq, now));
        self.last_sync = now;
        self.dirty = false;
        seq
    }

    /// An ack arrived. Clears the in-flight slot when it matches.
    pub fn on_ack(&mut self, epoch: u64, seq: u64) {
        if epoch == self.epoch && self.in_flight.is_some_and(|(s, _)| s == seq) {
            self.in_flight = None;
        }
    }

    /// Starts a new epoch (after a restart): batch numbering restarts and
    /// any in-flight batch from the previous incarnation is forgotten.
    pub fn start_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.next_seq = 0;
        self.in_flight = None;
        self.dirty = true;
    }
}

/// One replica held on behalf of another tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaEntry {
    /// The owner's epoch the copy was written under.
    pub epoch: u64,
    /// The last applied batch number under that epoch.
    pub seq: u64,
    /// The replicated `(agent, last known node)` records.
    pub records: BTreeMap<AgentId, NodeId>,
    /// The owner's replicated rate estimate (messages/second).
    pub rate: f64,
    /// When the last batch was applied — the age stamp freshness-bounded
    /// reads check before answering from this copy.
    pub synced_at: SimTime,
}

impl ReplicaEntry {
    /// Age of this copy at `now`, in whole milliseconds (rounded up, so
    /// a bound is never undershot by sub-millisecond truncation).
    #[must_use]
    pub fn age_ms(&self, now: SimTime) -> u64 {
        let age = now.saturating_since(self.synced_at);
        age.as_millis_f64().ceil() as u64
    }
}

/// The replica copies a tracker holds for its buddies.
///
/// Deliberately *not* counted into the `records_held` gauge: replica
/// copies are not ownership, and the single-ownership invariant sums that
/// gauge across live trackers.
#[derive(Debug, Default)]
pub struct ReplicaStore {
    entries: HashMap<AgentId, ReplicaEntry>,
}

impl ReplicaStore {
    /// Applies a `RecordSync` batch from `owner`. Full-snapshot
    /// semantics: the copy is replaced when the batch's `(epoch, seq)` is
    /// not older than the stored stamp; stale batches are ignored. `now`
    /// stamps the copy's age for freshness-bounded reads.
    /// Returns `true` when the batch was applied.
    pub fn apply_sync(
        &mut self,
        owner: AgentId,
        epoch: u64,
        seq: u64,
        records: Vec<(AgentId, NodeId)>,
        rate: f64,
        now: SimTime,
    ) -> bool {
        if let Some(existing) = self.entries.get(&owner) {
            if (epoch, seq) < (existing.epoch, existing.seq) {
                return false;
            }
        }
        self.entries.insert(
            owner,
            ReplicaEntry {
                epoch,
                seq,
                records: records.into_iter().collect(),
                rate,
                synced_at: now,
            },
        );
        true
    }

    /// The replica held for `owner`, if any.
    #[must_use]
    pub fn get(&self, owner: AgentId) -> Option<&ReplicaEntry> {
        self.entries.get(&owner)
    }

    /// Looks `target` up across every held replica, for freshness-bounded
    /// local reads: the last replicated node and the copy's age at `now`.
    /// Owners are scanned in raw-id order so concurrent copies (which
    /// cannot both own the key under single ownership) resolve
    /// deterministically.
    #[must_use]
    pub fn find(&self, target: AgentId, now: SimTime) -> Option<(NodeId, u64)> {
        let mut owners: Vec<&AgentId> = self.entries.keys().collect();
        owners.sort_unstable_by_key(|o| o.raw());
        for owner in owners {
            let entry = &self.entries[owner];
            if let Some(&node) = entry.records.get(&target) {
                return Some((node, entry.age_ms(now)));
            }
        }
        None
    }

    /// Drops the replica held for `owner` (it pulled its records back, or
    /// duty moved elsewhere).
    pub fn remove(&mut self, owner: AgentId) -> Option<ReplicaEntry> {
        self.entries.remove(&owner)
    }

    /// Number of owners with a stored replica.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no replicas are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything (the holder itself lost its soft state).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Where a recovering tracker is in its recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Waiting for the HAgent to grant a fresh epoch.
    AwaitEpoch,
    /// Epoch granted; waiting for the buddy's `ReplicaSet`.
    AwaitReplica,
    /// Replica installed (or none usable); soliciting re-registrations
    /// and answering from stale records until the set converges.
    Converging,
}

/// The recovery run of one restarted tracker.
#[derive(Debug)]
pub struct RecoveryState {
    /// Current phase.
    pub phase: RecoveryPhase,
    /// When recovery began (the restart).
    pub started: SimTime,
    /// Records recovered from the replica.
    pub recovered: usize,
    /// When the last epoch request / replica pull was sent, for retries.
    pub last_request: SimTime,
}

impl RecoveryState {
    /// Starts a recovery at `now`, in the epoch-request phase.
    #[must_use]
    pub fn new(now: SimTime) -> Self {
        RecoveryState {
            phase: RecoveryPhase::AwaitEpoch,
            started: now,
            recovered: 0,
            last_request: now,
        }
    }
}

/// Decides whether a pulled replica may be used by a recovering tracker.
///
/// The fence: the replica must have been written by a **strictly older
/// epoch** of the same tracker. A replica stamped with the current (or a
/// later) epoch would mean another incarnation is concurrently alive —
/// its records must not be resurrected here. The per-record ownership
/// filter (does the agent still hash to this tracker?) is applied by the
/// caller against its current hash-function copy.
#[must_use]
pub fn replica_usable(replica_epoch: u64, my_epoch: u64) -> bool {
    replica_epoch < my_epoch
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentrack_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn replicator_batches_are_rate_limited_and_acked() {
        let mut r = Replicator::default();
        let interval = SimDuration::from_millis(100);
        let retry = SimDuration::from_millis(300);
        assert!(!r.due(t(500), interval, retry), "no buddy, nothing due");
        r.set_buddy(Some((AgentId::new(9), NodeId::new(1))));
        assert!(r.due(t(500), interval, retry), "new buddy: full sync due");
        let seq = r.cut_batch(t(500));
        assert_eq!(seq, 1);
        assert!(
            !r.due(t(550), interval, retry),
            "in flight, not yet overdue"
        );
        assert!(r.due(t(800), interval, retry), "unacked batch is retried");
        let seq2 = r.cut_batch(t(800));
        assert_eq!(seq2, 2, "retry gets a fresh seq");
        r.on_ack(0, 1);
        assert!(r.due(t(1200), interval, retry), "stale ack does not clear");
        r.on_ack(0, 2);
        assert!(!r.due(t(1200), interval, retry), "acked and clean");
        r.mark_dirty();
        assert!(!r.due(t(810), interval, retry), "interval not yet elapsed");
        assert!(r.due(t(900), interval, retry));
    }

    #[test]
    fn replicator_epoch_restart_resets_batches() {
        let mut r = Replicator::default();
        r.set_buddy(Some((AgentId::new(9), NodeId::new(1))));
        let _ = r.cut_batch(t(0));
        r.start_epoch(3);
        assert_eq!(r.epoch, 3);
        let seq = r.cut_batch(t(10));
        assert_eq!(seq, 1, "seq restarts with the epoch");
        r.on_ack(2, 1);
        assert!(
            r.due(
                t(1000),
                SimDuration::from_millis(1),
                SimDuration::from_millis(1)
            ),
            "ack from the old epoch is fenced out"
        );
    }

    #[test]
    fn replica_store_is_last_writer_wins_by_stamp() {
        let mut store = ReplicaStore::default();
        let owner = AgentId::new(4);
        let rec = |n: u64| vec![(AgentId::new(100), NodeId::new(n as u32))];
        assert!(store.apply_sync(owner, 1, 5, rec(1), 2.0, t(10)));
        assert!(
            !store.apply_sync(owner, 1, 4, rec(2), 2.0, t(20)),
            "older seq"
        );
        assert!(
            !store.apply_sync(owner, 0, 9, rec(3), 2.0, t(30)),
            "older epoch"
        );
        assert!(
            store.apply_sync(owner, 1, 5, rec(4), 2.0, t(40)),
            "same stamp re-applies"
        );
        assert!(
            store.apply_sync(owner, 2, 1, rec(5), 2.0, t(50)),
            "newer epoch wins"
        );
        assert_eq!(
            store.get(owner).unwrap().records[&AgentId::new(100)],
            NodeId::new(5)
        );
        assert_eq!(store.len(), 1);
        store.remove(owner);
        assert!(store.is_empty());
    }

    #[test]
    fn replica_age_tracks_the_last_applied_sync() {
        let mut store = ReplicaStore::default();
        let owner = AgentId::new(4);
        assert!(store.apply_sync(
            owner,
            1,
            1,
            vec![(AgentId::new(7), NodeId::new(2))],
            1.0,
            t(100)
        ));
        let entry = store.get(owner).unwrap();
        assert_eq!(entry.synced_at, t(100));
        assert_eq!(entry.age_ms(t(100)), 0);
        assert_eq!(entry.age_ms(t(350)), 250);
        // A rejected (stale) batch leaves the stamp untouched.
        let _ = store.apply_sync(owner, 0, 0, vec![], 1.0, t(400));
        assert_eq!(store.get(owner).unwrap().synced_at, t(100));
        // A newer batch refreshes it.
        assert!(store.apply_sync(owner, 1, 2, vec![], 1.0, t(500)));
        assert_eq!(store.get(owner).unwrap().age_ms(t(600)), 100);
    }

    #[test]
    fn epoch_fence_rejects_same_or_newer_epochs() {
        assert!(replica_usable(2, 3), "previous incarnation's replica");
        assert!(replica_usable(0, 3), "much older is still usable");
        assert!(!replica_usable(3, 3), "same epoch: concurrent incarnation");
        assert!(!replica_usable(4, 3), "future epoch: fenced");
    }
}
