//! The centralized baseline: the comparison scheme of the paper's
//! evaluation.
//!
//! "In the centralized scheme, there is a single central agent that is
//! responsible for maintaining the current location of all mobile agents
//! in the system. This central agent performs the same functions as the
//! IAgents in our system." (paper §5.)
//!
//! Every register, update and locate in the whole system funnels through
//! one agent — one FIFO service station — which is why its location time
//! grows with both the agent population and the mobility rate.

use std::collections::HashMap;

use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, Spawner, TimerId};
use agentrack_sim::{CorrId, GiveUpCause, MetricsRegistry, TraceEvent};

use crate::config::LocationConfig;
use crate::mailbox::Mailbox;
use crate::retry::{LocateTracker, Retry};
use crate::scheme::{
    ClientEvent, ClientFactory, DirectoryClient, LocationScheme, SchemeStats, SharedSchemeStats,
};
use crate::wire::Wire;

/// Behaviour of the single central tracker.
#[derive(Debug, Default)]
pub struct CentralBehavior {
    records: HashMap<AgentId, NodeId>,
    mailbox: Mailbox,
    shared: SharedSchemeStats,
    requests_seen: u64,
}

impl CentralBehavior {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        CentralBehavior {
            records: HashMap::new(),
            mailbox: Mailbox::new(agentrack_sim::SimDuration::from_secs(10)),
            shared: SharedSchemeStats::new(),
            requests_seen: 0,
        }
    }

    /// Reports mail losses and per-tracker metrics into the scheme's
    /// shared statistics instead of a detached default.
    #[must_use]
    pub fn with_shared(mut self, shared: SharedSchemeStats) -> Self {
        self.shared = shared;
        self
    }

    /// Buffers mail for `target`, counting the buffering in the metrics
    /// registry and the event trace.
    fn buffer_mail(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        from: AgentId,
        data: Vec<u8>,
    ) {
        self.mailbox.push(ctx.now(), target, from, data);
        let occupancy = self.mailbox.len();
        let me = ctx.self_id().raw();
        self.shared.registry().update_tracker(me, |t| {
            t.mail_buffered += 1;
            t.observe_mailbox(occupancy);
        });
        ctx.trace().emit(ctx.now(), || TraceEvent::MailBuffered {
            tracker: me,
            target: target.raw(),
            occupancy,
        });
    }

    /// Wipes the tracker's soft state after a crash that lost it: every
    /// record and all buffered mail, with the mail loss accounted in the
    /// metrics and the event trace. Records repair themselves as agents
    /// keep sending movement updates.
    pub(crate) fn drop_soft_state(&mut self, ctx: &mut AgentCtx<'_>) {
        let lost = self.mailbox.len();
        if lost > 0 {
            let me = ctx.self_id().raw();
            self.shared
                .registry()
                .update_tracker(me, |t| t.mail_lost += lost as u64);
            ctx.trace()
                .emit(ctx.now(), || TraceEvent::MailExpired { tracker: me, lost });
        }
        self.mailbox.drain_if(|_| true);
        self.records.clear();
    }

    fn flush_mail_for(&mut self, ctx: &mut AgentCtx<'_>, agent: AgentId) {
        if self.mailbox.is_empty() {
            return;
        }
        if let Some(&node) = self.records.get(&agent) {
            let items = self.mailbox.take_for(agent);
            if items.is_empty() {
                return;
            }
            let count = items.len();
            let me = ctx.self_id().raw();
            self.shared
                .registry()
                .update_tracker(me, |t| t.mail_flushed += count as u64);
            ctx.trace().emit(ctx.now(), || TraceEvent::MailFlushed {
                tracker: me,
                target: agent.raw(),
                count,
            });
            for item in items {
                ctx.send(
                    agent,
                    node,
                    Wire::MailDrop {
                        from: item.from,
                        data: item.data,
                    }
                    .payload(),
                );
            }
        }
    }
}

impl Agent for CentralBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(agentrack_sim::SimDuration::from_millis(500));
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        if lost_soft_state {
            self.drop_soft_state(ctx);
        }
        // The crash killed the expiry timer chain; re-arm it.
        ctx.set_timer(agentrack_sim::SimDuration::from_millis(500));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: agentrack_platform::TimerId) {
        let me = ctx.self_id().raw();
        let lost = self.mailbox.expire(ctx.now());
        if lost > 0 {
            // Guaranteed delivery just failed silently for `lost` messages:
            // make the loss visible to the registry and the event trace.
            self.shared
                .registry()
                .update_tracker(me, |t| t.mail_lost += lost as u64);
            ctx.trace()
                .emit(ctx.now(), || TraceEvent::MailExpired { tracker: me, lost });
        }
        let requests = self.requests_seen;
        let records_held = self.records.len();
        let mailbox_occupancy = self.mailbox.len();
        self.shared.registry().update_tracker(me, |t| {
            t.requests = requests;
            t.records_held = records_held;
            t.observe_mailbox(mailbox_occupancy);
        });
        ctx.set_timer(agentrack_sim::SimDuration::from_millis(500));
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) {
        // A MailDrop bounced off a recipient that just moved: hold it for
        // the next update (the delivery guarantee).
        if let Some(Wire::MailDrop { from, data }) = Wire::from_payload(payload) {
            self.records.remove(&to);
            self.buffer_mail(ctx, to, from, data);
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        self.requests_seen += 1;
        match msg {
            Wire::Register { agent, node } => {
                self.records.insert(agent, node);
                ctx.send(from, node, Wire::RegisterAck { agent }.payload());
                self.flush_mail_for(ctx, agent);
            }
            Wire::Update { agent, node } => {
                self.records.insert(agent, node);
                self.flush_mail_for(ctx, agent);
            }
            Wire::DeliverVia {
                target,
                from: origin,
                data,
                ..
            } => match self.records.get(&target) {
                Some(&node) => ctx.send(
                    target,
                    node,
                    Wire::MailDrop { from: origin, data }.payload(),
                ),
                None => self.buffer_mail(ctx, target, origin, data),
            },
            Wire::Deregister { agent, .. } => {
                self.records.remove(&agent);
            }
            Wire::Locate {
                target,
                token,
                reply_node,
                corr,
                ..
            } => {
                // The central record is authoritative, so every answer is
                // age 0 and satisfies any freshness bound.
                let answer = match self.records.get(&target) {
                    Some(&node) => Wire::Located {
                        target,
                        node,
                        stale: false,
                        age_ms: 0,
                        token,
                        corr,
                    },
                    None => Wire::NotFound {
                        target,
                        token,
                        corr,
                    },
                };
                let me = ctx.self_id();
                let here = ctx.node();
                ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                    kind: answer.kind(),
                    corr: answer.corr(),
                    from: me.raw(),
                    to: from.raw(),
                    node: here,
                });
                ctx.send(from, reply_node, answer.payload());
            }
            _ => {}
        }
    }
}

/// The centralized location scheme: one tracker on one node.
#[derive(Debug)]
pub struct CentralizedScheme {
    config: LocationConfig,
    shared: SharedSchemeStats,
    central: Option<(AgentId, NodeId)>,
}

impl CentralizedScheme {
    /// Creates the scheme; the tracker is placed on node 0 at bootstrap.
    #[must_use]
    pub fn new(config: LocationConfig) -> Self {
        CentralizedScheme {
            config,
            shared: SharedSchemeStats::new(),
            central: None,
        }
    }

    /// The central tracker's identity, after bootstrap.
    #[must_use]
    pub fn central(&self) -> Option<(AgentId, NodeId)> {
        self.central
    }
}

impl LocationScheme for CentralizedScheme {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn bootstrap(&mut self, platform: &mut dyn Spawner) {
        assert!(self.central.is_none(), "bootstrap called twice");
        let node = NodeId::new(0);
        let id = platform.spawn_agent(
            Box::new(CentralBehavior::new().with_shared(self.shared.clone())),
            node,
        );
        self.central = Some((id, node));
        self.shared.set_trackers(1);
    }

    fn client_factory(&self) -> ClientFactory {
        let central = self.central.expect("client_factory before bootstrap");
        let config = self.config.clone();
        let registry = self.shared.registry().clone();
        std::sync::Arc::new(move || {
            Box::new(
                CentralizedClient::new(config.clone(), central).with_registry(registry.clone()),
            )
        })
    }

    fn stats(&self) -> SchemeStats {
        self.shared.snapshot()
    }

    fn registry(&self) -> MetricsRegistry {
        self.shared.registry().clone()
    }
}

/// Client-side state machine of the centralized scheme.
#[derive(Debug)]
pub struct CentralizedClient {
    config: LocationConfig,
    central: (AgentId, NodeId),
    registered: bool,
    tracker: LocateTracker,
    registry: MetricsRegistry,
}

impl CentralizedClient {
    /// Creates a client of the given central tracker.
    #[must_use]
    pub fn new(config: LocationConfig, central: (AgentId, NodeId)) -> Self {
        CentralizedClient {
            config,
            central,
            registered: false,
            tracker: LocateTracker::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Reports locate latencies into the given registry (the scheme's
    /// shared one) instead of a detached default.
    #[must_use]
    pub fn with_registry(mut self, registry: MetricsRegistry) -> Self {
        self.registry = registry;
        self
    }

    fn send_central(&self, ctx: &mut AgentCtx<'_>, msg: &Wire) {
        ctx.send(self.central.0, self.central.1, msg.payload());
    }

    fn send_locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        let here = ctx.node();
        let me = ctx.self_id();
        let msg = Wire::Locate {
            target,
            token,
            reply_node: here,
            corr: Some(CorrId::new(me.raw(), token)),
            freshness: self.tracker.freshness(token).unwrap_or_default(),
        };
        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
            kind: msg.kind(),
            corr: msg.corr(),
            from: me.raw(),
            to: self.central.0.raw(),
            node: here,
        });
        self.send_central(ctx, &msg);
        self.tracker
            .note_tracker(token, self.central.0.raw(), self.central.1);
        self.tracker
            .arm_timer(ctx, self.config.locate_retry_timeout, token);
    }

    fn act(&mut self, ctx: &mut AgentCtx<'_>, decision: Retry) -> ClientEvent {
        let me = ctx.self_id();
        match decision {
            Retry::Again { token, target } => {
                let attempt = self.tracker.attempts(token).unwrap_or(0);
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryAttempt {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempt,
                });
                self.send_locate(ctx, target, token);
                ClientEvent::Consumed
            }
            Retry::GiveUp {
                token,
                target,
                cause,
                tracker,
                tracker_node,
            } => {
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryGiveUp {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempts: self.config.max_locate_attempts,
                    cause,
                });
                if let Some(tracker) = tracker {
                    let remote = tracker_node.is_some_and(|n| n != ctx.node());
                    self.registry.update_tracker(tracker, |t| match cause {
                        GiveUpCause::Timeout => {
                            t.giveup_timeout += 1;
                            if remote {
                                t.giveup_timeout_remote += 1;
                            }
                        }
                        GiveUpCause::Negative => {
                            t.giveup_negative += 1;
                            if remote {
                                t.giveup_negative_remote += 1;
                            }
                        }
                    });
                }
                ClientEvent::Failed { token, target }
            }
            Retry::Nothing => ClientEvent::Consumed,
        }
    }

    fn retry_locate(&mut self, ctx: &mut AgentCtx<'_>, token: u64) -> ClientEvent {
        let decision = self
            .tracker
            .on_negative(token, self.config.max_locate_attempts);
        self.act(ctx, decision)
    }
}

impl DirectoryClient for CentralizedClient {
    fn register(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        let here = ctx.node();
        self.send_central(
            ctx,
            &Wire::Register {
                agent: me,
                node: here,
            },
        );
    }

    fn moved(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        let here = ctx.node();
        if self.registered {
            self.send_central(
                ctx,
                &Wire::Update {
                    agent: me,
                    node: here,
                },
            );
        } else {
            self.register(ctx);
        }
    }

    fn deregister(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        self.send_central(ctx, &Wire::Deregister { agent: me, ttl: 0 });
    }

    fn locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        self.locate_with(ctx, target, token, crate::wire::Freshness::Any);
    }

    fn locate_with(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        freshness: crate::wire::Freshness,
    ) {
        self.tracker.start_with(token, target, ctx.now(), freshness);
        self.send_locate(ctx, target, token);
    }

    fn on_message(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _from: AgentId,
        payload: &Payload,
    ) -> ClientEvent {
        let Some(msg) = Wire::from_payload(payload) else {
            return ClientEvent::NotMine;
        };
        {
            let me = _ctx.self_id();
            let here = _ctx.node();
            let queued = _ctx.queued();
            _ctx.trace().emit(_ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        match msg {
            Wire::RegisterAck { agent } => {
                if agent == _ctx.self_id() && !self.registered {
                    self.registered = true;
                    ClientEvent::Registered
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                ..
            } => {
                if let Some(started) = self.tracker.complete(token) {
                    self.registry
                        .record_locate(_ctx.now().saturating_since(started));
                    ClientEvent::Located {
                        token,
                        target,
                        node,
                        stale,
                        age_ms,
                    }
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::MailDrop { from, data } => ClientEvent::Mail { from, data },
            Wire::NotFound { token, .. } => self.retry_locate(_ctx, token),
            _ => ClientEvent::NotMine,
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) -> ClientEvent {
        // The central tracker is static; bounces only occur under injected
        // faults. Locates recover through their retry timers; updates are
        // resent immediately.
        match Wire::from_payload(payload) {
            Some(Wire::Update { .. } | Wire::Register { .. }) => {
                self.moved(ctx);
                ClientEvent::Consumed
            }
            Some(_) => ClientEvent::Consumed,
            None => ClientEvent::NotMine,
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) -> ClientEvent {
        match self
            .tracker
            .on_timer(timer, self.config.max_locate_attempts)
        {
            Some(decision) => self.act(ctx, decision),
            None => ClientEvent::NotMine,
        }
    }

    fn send_via(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, data: Vec<u8>) -> bool {
        let me = ctx.self_id();
        self.send_central(
            ctx,
            &Wire::DeliverVia {
                target,
                from: me,
                data,
                ttl: 1,
            },
        );
        true
    }
}
