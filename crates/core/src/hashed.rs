//! The paper's mechanism assembled: scheme bootstrap and the client-side
//! state machine.
//!
//! Client flows (paper §2.3):
//!
//! * **Registration** — on creation, an agent asks the LHAgent *at its own
//!   node* which IAgent is responsible for it, then registers with that
//!   IAgent and caches it.
//! * **Movement** — after each move the agent informs its cached IAgent;
//!   a `NotResponsible` answer (or a bounce off a retired IAgent) makes it
//!   re-resolve freshly through the local LHAgent and resend.
//! * **Locating** — resolve the target through the local LHAgent, then
//!   query the returned IAgent; `NotResponsible` / `NotFound` / bounces
//!   trigger a fresh resolve and a retry, up to the configured budget.

use std::sync::Arc;

use agentrack_platform::{AgentCtx, AgentId, NodeId, Payload, Spawner, TimerId};
use agentrack_sim::{CorrId, GiveUpCause, MetricsRegistry, TraceEvent};

use crate::config::LocationConfig;
use crate::geo::ReachabilityMap;
use crate::hagent::{HAgentBehavior, StandbyHAgentBehavior};
use crate::iagent::IAgentBehavior;
use crate::lhagent::LHAgentBehavior;
use crate::mailbox::MAIL_MAX_HOPS;
use crate::retry::{LocateTracker, Retry};
use crate::scheme::{
    ClientEvent, ClientFactory, CopyRole, DirectoryClient, LocationScheme, SchemeStats,
    SharedSchemeStats,
};
use crate::wire::{Freshness, HashFunction, Wire};

/// The hash-based location scheme: one HAgent, one initial IAgent, one
/// LHAgent per node.
///
/// # Examples
///
/// ```
/// use agentrack_core::{HashedScheme, LocationConfig, LocationScheme};
/// use agentrack_platform::{PlatformConfig, SimPlatform};
/// use agentrack_sim::{DurationDist, SimDuration, Topology};
///
/// let topo = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(300)));
/// let mut platform = SimPlatform::new(topo, PlatformConfig::default());
/// let mut scheme = HashedScheme::new(LocationConfig::default());
/// scheme.bootstrap(&mut platform);
/// // The scheme's agents run periodic self-checks, so drive the platform
/// // by time, not to idleness.
/// platform.run_for(SimDuration::from_millis(100));
/// let client = scheme.make_client();
/// # let _ = client;
/// ```
#[derive(Debug)]
pub struct HashedScheme {
    config: LocationConfig,
    shared: SharedSchemeStats,
    lhagents: Arc<Vec<AgentId>>,
    bootstrapped: bool,
    standby: bool,
    hagent: Option<(AgentId, NodeId)>,
    standby_agent: Option<(AgentId, NodeId)>,
}

impl HashedScheme {
    /// Creates the scheme with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LocationConfig::validate`]).
    #[must_use]
    pub fn new(config: LocationConfig) -> Self {
        config.validate().expect("invalid location configuration");
        HashedScheme {
            config,
            shared: SharedSchemeStats::new(),
            lhagents: Arc::new(Vec::new()),
            bootstrapped: false,
            standby: false,
            hagent: None,
            standby_agent: None,
        }
    }

    /// Deploys a hot-standby HAgent replica at bootstrap (the paper's §7
    /// fault-tolerance direction): the primary pushes every version to it,
    /// and LHAgents fail over to it when the primary is unreachable.
    ///
    /// The standby is placed on node 1; on a single-node topology it
    /// necessarily shares the primary's node and only protects against the
    /// primary *agent* failing, not the node.
    #[must_use]
    pub fn with_standby(mut self) -> Self {
        self.standby = true;
        self
    }

    /// The primary HAgent's identity, after bootstrap (for fault
    /// injection in tests).
    #[must_use]
    pub fn hagent(&self) -> Option<(AgentId, NodeId)> {
        self.hagent
    }

    /// The standby HAgent's identity, if deployed.
    #[must_use]
    pub fn standby_hagent(&self) -> Option<(AgentId, NodeId)> {
        self.standby_agent
    }

    /// The per-node LHAgent directory (index = node), available after
    /// bootstrap.
    #[must_use]
    pub fn lhagents(&self) -> Arc<Vec<AgentId>> {
        Arc::clone(&self.lhagents)
    }
}

impl LocationScheme for HashedScheme {
    fn name(&self) -> &'static str {
        "hashed"
    }

    fn bootstrap(&mut self, platform: &mut dyn Spawner) {
        assert!(!self.bootstrapped, "bootstrap called twice");
        let node_count = platform.node_count();
        let home = NodeId::new(0);

        // Agent ids are assigned sequentially, so the whole cast can be
        // named before anything is spawned — which lets every behaviour be
        // constructed with full knowledge of the others.
        let base = platform.next_agent_id();
        let iagent0 = AgentId::new(base);
        let hagent = AgentId::new(base + 1);
        let standby_offset = u64::from(self.standby);
        let standby = self
            .standby
            .then(|| (AgentId::new(base + 2), NodeId::new(1 % node_count)));
        let lhagents: Vec<AgentId> = (0..node_count)
            .map(|i| AgentId::new(base + 2 + standby_offset + u64::from(i)))
            .collect();

        let hf = HashFunction::initial(iagent0, home);

        let spawned = platform.spawn_agent(
            Box::new(
                IAgentBehavior::initial(
                    self.config.clone(),
                    hagent,
                    home,
                    hf.clone(),
                    self.shared.clone(),
                )
                .with_standby(standby),
            ),
            home,
        );
        assert_eq!(spawned, iagent0, "agent id assignment drifted");

        let lh_directory: Vec<(AgentId, NodeId)> = lhagents
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, NodeId::new(i as u32)))
            .collect();
        let mut hagent_behavior = HAgentBehavior::new(
            self.config.clone(),
            hf.clone(),
            lh_directory,
            node_count,
            self.shared.clone(),
        );
        if let Some((standby_id, standby_node)) = standby {
            hagent_behavior = hagent_behavior.with_standby(standby_id, standby_node);
        }
        let spawned = platform.spawn_agent(Box::new(hagent_behavior), home);
        assert_eq!(spawned, hagent, "agent id assignment drifted");

        if let Some((standby_id, standby_node)) = standby {
            let spawned = platform.spawn_agent(
                Box::new(StandbyHAgentBehavior::new(hf.clone(), self.shared.clone())),
                standby_node,
            );
            assert_eq!(spawned, standby_id, "agent id assignment drifted");
        }

        for (i, &expected) in lhagents.iter().enumerate() {
            let mut lh = LHAgentBehavior::new(hf.clone(), hagent, home, self.shared.clone())
                .with_audit(self.config.version_audit)
                .with_timing(&self.config);
            if let Some((standby_id, standby_node)) = standby {
                lh = lh.with_standby(standby_id, standby_node);
            }
            let spawned = platform.spawn_agent(Box::new(lh), NodeId::new(i as u32));
            assert_eq!(spawned, expected, "agent id assignment drifted");
        }

        self.hagent = Some((hagent, home));
        self.standby_agent = standby;
        self.lhagents = Arc::new(lhagents);
        self.bootstrapped = true;
    }

    fn client_factory(&self) -> ClientFactory {
        assert!(self.bootstrapped, "client_factory before bootstrap");
        let config = self.config.clone();
        let lhagents = self.lhagents();
        let registry = self.shared.registry().clone();
        let shared = self.shared.clone();
        Arc::new(move || {
            Box::new(
                HashedClient::new(config.clone(), Arc::clone(&lhagents))
                    .with_registry(registry.clone())
                    .with_shared(shared.clone()),
            )
        })
    }

    fn stats(&self) -> SchemeStats {
        self.shared.snapshot()
    }

    fn registry(&self) -> MetricsRegistry {
        self.shared.registry().clone()
    }

    fn hash_versions(&self) -> Vec<(u64, CopyRole, u64)> {
        self.shared.versions()
    }

    fn set_adaptation_frozen(&self, frozen: bool) {
        self.shared.set_adaptation_frozen(frozen);
    }
}

/// Client-side state machine of the hashed scheme (one per mobile agent).
#[derive(Debug)]
pub struct HashedClient {
    config: LocationConfig,
    /// LHAgent at each node (index = node id).
    lhagents: Arc<Vec<AgentId>>,
    /// Cached responsible IAgent for the *owning* agent.
    my_iagent: Option<(AgentId, NodeId)>,
    registered: bool,
    /// Watchdog for the registration handshake: any leg of
    /// resolve → register → ack can be lost to the network, and an
    /// unregistered agent is unlocatable, so the handshake restarts until
    /// the ack lands.
    register_watchdog: Option<TimerId>,
    tracker: LocateTracker,
    registry: MetricsRegistry,
    /// Scheme-wide counters (hedges, bound violations) shared with the
    /// behaviours; a detached default when the client is built directly.
    shared: SharedSchemeStats,
    /// Per-destination reachability, fed by locate outcomes; drives
    /// hedging of freshness-bounded locates.
    health: ReachabilityMap,
}

impl HashedClient {
    /// Creates a client talking to the given per-node LHAgents.
    #[must_use]
    pub fn new(config: LocationConfig, lhagents: Arc<Vec<AgentId>>) -> Self {
        let health = ReachabilityMap::new(config.geo_degrade_after, config.geo_heal_after);
        HashedClient {
            config,
            lhagents,
            my_iagent: None,
            registered: false,
            register_watchdog: None,
            tracker: LocateTracker::new(),
            registry: MetricsRegistry::new(),
            shared: SharedSchemeStats::new(),
            health,
        }
    }

    /// Reports locate latencies into the given registry (the scheme's
    /// shared one) instead of a detached default.
    #[must_use]
    pub fn with_registry(mut self, registry: MetricsRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Reports scheme-wide counters into the given shared stats (the
    /// scheme's) instead of a detached default.
    #[must_use]
    pub fn with_shared(mut self, shared: SharedSchemeStats) -> Self {
        self.shared = shared;
        self
    }

    fn local_lhagent(&self, ctx: &AgentCtx<'_>) -> AgentId {
        self.lhagents[ctx.node().index()]
    }

    fn send_local_resolve(&self, ctx: &mut AgentCtx<'_>, msg: &Wire) {
        let lh = self.local_lhagent(ctx);
        let here = ctx.node();
        let me = ctx.self_id();
        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
            kind: msg.kind(),
            corr: msg.corr(),
            from: me.raw(),
            to: lh.raw(),
            node: here,
        });
        ctx.send(lh, here, msg.payload());
    }

    /// Starts (or retries) the locate identified by `token`.
    fn resolve_for_locate(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        fresh: bool,
    ) {
        let corr = Some(CorrId::new(ctx.self_id().raw(), token));
        let msg = if fresh {
            Wire::ResolveFresh {
                target,
                token: Some(token),
                corr,
            }
        } else {
            Wire::Resolve {
                target,
                token: Some(token),
                corr,
            }
        };
        self.send_local_resolve(ctx, &msg);
        self.tracker
            .arm_timer(ctx, self.config.locate_retry_timeout, token);
    }

    /// Acts on a retry decision from the tracker.
    fn act(&mut self, ctx: &mut AgentCtx<'_>, decision: Retry) -> ClientEvent {
        let me = ctx.self_id();
        match decision {
            Retry::Again { token, target } => {
                let attempt = self.tracker.attempts(token).unwrap_or(0);
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryAttempt {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempt,
                });
                self.resolve_for_locate(ctx, target, token, true);
                ClientEvent::Consumed
            }
            Retry::GiveUp {
                token,
                target,
                cause,
                tracker,
                tracker_node,
            } => {
                ctx.trace().emit(ctx.now(), || TraceEvent::RetryGiveUp {
                    corr: Some(CorrId::new(me.raw(), token)),
                    client: me.raw(),
                    target: target.raw(),
                    attempts: self.config.max_locate_attempts,
                    cause,
                });
                // A final timeout is one more unreachability signal for
                // that destination; a final negative proves it reachable.
                if let Some(node) = tracker_node {
                    match cause {
                        GiveUpCause::Timeout => self.health.on_timeout(node),
                        GiveUpCause::Negative => self.health.on_success(node),
                    }
                }
                // Charge the give-up to the tracker the final attempt hit,
                // split by cause (timeout = it never answered; negative =
                // it answered NotFound/NotResponsible). The remote
                // counters tally the subset whose tracker sat on another
                // node than the querier.
                if let Some(tracker) = tracker {
                    let remote = tracker_node.is_some_and(|n| n != ctx.node());
                    self.registry.update_tracker(tracker, |t| {
                        match cause {
                            GiveUpCause::Timeout => t.giveup_timeout += 1,
                            GiveUpCause::Negative => t.giveup_negative += 1,
                        }
                        if remote {
                            match cause {
                                GiveUpCause::Timeout => t.giveup_timeout_remote += 1,
                                GiveUpCause::Negative => t.giveup_negative_remote += 1,
                            }
                        }
                    });
                }
                ClientEvent::Failed { token, target }
            }
            Retry::Nothing => ClientEvent::Consumed,
        }
    }

    /// Retries a locate after a negative answer; reports failure once the
    /// budget is exhausted.
    fn retry_locate(&mut self, ctx: &mut AgentCtx<'_>, token: u64) -> ClientEvent {
        let decision = self
            .tracker
            .on_negative(token, self.config.max_locate_attempts);
        self.act(ctx, decision)
    }

    fn send_own_update(&self, ctx: &mut AgentCtx<'_>) {
        if let Some((iagent, node)) = self.my_iagent {
            let me = ctx.self_id();
            let here = ctx.node();
            ctx.send(
                iagent,
                node,
                Wire::Update {
                    agent: me,
                    node: here,
                }
                .payload(),
            );
        }
    }

    /// A negative answer still proves its sender's node reachable: feed
    /// the reachability map when the sender is the op's noted tracker.
    fn note_reachable(&mut self, from: AgentId, token: u64) {
        if let Some((tracker, node)) = self.tracker.noted_tracker(token) {
            if tracker == from.raw() {
                self.health.on_success(node);
            }
        }
    }

    fn refresh_own_iagent(&self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        self.send_local_resolve(
            ctx,
            &Wire::ResolveFresh {
                target: me,
                token: None,
                corr: None,
            },
        );
    }
}

impl DirectoryClient for HashedClient {
    fn register(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.self_id();
        self.send_local_resolve(
            ctx,
            &Wire::Resolve {
                target: me,
                token: None,
                corr: None,
            },
        );
        self.register_watchdog = Some(ctx.set_timer(self.config.locate_retry_timeout));
    }

    fn moved(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.registered {
            self.send_own_update(ctx);
        } else {
            // Moved before registration completed: restart it from the new
            // node's LHAgent.
            self.register(ctx);
        }
    }

    fn deregister(&mut self, ctx: &mut AgentCtx<'_>) {
        // Routed via the local LHAgent, not the cached tracker: the dying
        // agent disposes itself right after this send and can never see a
        // bounce, so aiming at a tracker that has since merged away would
        // leak the record forever. The LHAgent survives to retry.
        let me = ctx.self_id();
        self.send_local_resolve(
            ctx,
            &Wire::Deregister {
                agent: me,
                ttl: MAIL_MAX_HOPS,
            },
        );
    }

    fn locate(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, token: u64) {
        self.locate_with(ctx, target, token, Freshness::Any);
    }

    fn locate_with(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        target: AgentId,
        token: u64,
        freshness: Freshness,
    ) {
        self.tracker.start_with(token, target, ctx.now(), freshness);
        self.resolve_for_locate(ctx, target, token, false);
    }

    fn on_message(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _from: AgentId,
        payload: &Payload,
    ) -> ClientEvent {
        let Some(msg) = Wire::from_payload(payload) else {
            return ClientEvent::NotMine;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        match msg {
            // Phase-1 answer for one of our locates.
            Wire::Resolved {
                iagent,
                node,
                buddy,
                token: Some(token),
                corr,
                ..
            } => {
                if let Some(target) = self.tracker.target(token) {
                    let here = ctx.node();
                    let me = ctx.self_id();
                    self.tracker.note_tracker(token, iagent.raw(), node);
                    self.tracker.note_buddy(token, buddy);
                    let freshness = self.tracker.freshness(token).unwrap_or_default();
                    let locate = Wire::Locate {
                        target,
                        token,
                        reply_node: here,
                        freshness,
                        corr: corr.or_else(|| Some(CorrId::new(me.raw(), token))),
                    };
                    ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                        kind: locate.kind(),
                        corr: locate.corr(),
                        from: me.raw(),
                        to: iagent.raw(),
                        node: here,
                    });
                    ctx.send(iagent, node, locate.payload());
                    // Hedge: a bounded read toward a destination that has
                    // been timing out goes to the tracker's buddy replica
                    // in parallel, so the answer can come from this side
                    // of a severed link.
                    if matches!(freshness, Freshness::BoundedMs(_))
                        && self.health.should_hedge(node)
                    {
                        if let Some((b, b_node)) = buddy.filter(|&(b, _)| b != iagent) {
                            self.shared.update(|s| s.hedged_locates += 1);
                            let hedge = Wire::Locate {
                                target,
                                token,
                                reply_node: here,
                                freshness,
                                corr: corr.or_else(|| Some(CorrId::new(me.raw(), token))),
                            };
                            ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
                                kind: hedge.kind(),
                                corr: hedge.corr(),
                                from: me.raw(),
                                to: b.raw(),
                                node: here,
                            });
                            ctx.send(b, b_node, hedge.payload());
                        }
                    }
                }
                ClientEvent::Consumed
            }
            // Phase-1 answer about ourselves (registration or own-update
            // refresh).
            Wire::Resolved {
                target,
                iagent,
                node,
                token: None,
                ..
            } => {
                if target != ctx.self_id() {
                    return ClientEvent::Consumed;
                }
                self.my_iagent = Some((iagent, node));
                if self.registered {
                    self.send_own_update(ctx);
                } else {
                    let me = ctx.self_id();
                    let here = ctx.node();
                    ctx.send(
                        iagent,
                        node,
                        Wire::Register {
                            agent: me,
                            node: here,
                        }
                        .payload(),
                    );
                }
                ClientEvent::Consumed
            }
            Wire::RegisterAck { agent } if agent == ctx.self_id() => {
                let was_new = !self.registered;
                self.registered = true;
                self.register_watchdog = None;
                if was_new {
                    ClientEvent::Registered
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                ..
            } => {
                let declared = self.tracker.freshness(token);
                let noted = self.tracker.noted_tracker(token);
                if let Some(started) = self.tracker.complete(token) {
                    // An answer from the tracker itself is a reachability
                    // signal for its node (a hedged buddy answering for
                    // it is not).
                    if let Some((tracker, t_node)) = noted {
                        if tracker == _from.raw() {
                            self.health.on_success(t_node);
                        }
                    }
                    // Audit the contract this PR introduces: no answer
                    // may exceed the bound its locate declared. The
                    // invariant checker requires this count to stay 0.
                    if declared.is_some_and(|f| !f.admits(age_ms)) {
                        self.shared.update(|s| s.bound_violations += 1);
                    }
                    self.registry
                        .record_locate(ctx.now().saturating_since(started));
                    ClientEvent::Located {
                        token,
                        target,
                        node,
                        stale,
                        age_ms,
                    }
                } else {
                    ClientEvent::Consumed
                }
            }
            Wire::SolicitReregister => {
                // A recovering tracker resurrected our record from a
                // replica and wants it reconfirmed from where we really
                // are.
                if self.registered {
                    if self.my_iagent.is_some() {
                        self.send_own_update(ctx);
                    } else {
                        self.refresh_own_iagent(ctx);
                    }
                } else {
                    self.register(ctx);
                }
                ClientEvent::Consumed
            }
            Wire::MailDrop { from, data } => ClientEvent::Mail { from, data },
            Wire::NotFound { token, .. } => {
                self.note_reachable(_from, token);
                // A negative from anyone but the op's noted tracker is a
                // hedged buddy (or a stale straggler) saying "I don't
                // know" — not authoritative, so it must not burn the
                // primary attempt's retry budget.
                if self
                    .tracker
                    .noted_tracker(token)
                    .is_some_and(|(t, _)| t != _from.raw())
                {
                    ClientEvent::Consumed
                } else {
                    self.retry_locate(ctx, token)
                }
            }
            Wire::NotResponsible {
                token: Some(token), ..
            } => {
                self.note_reachable(_from, token);
                if self
                    .tracker
                    .noted_tracker(token)
                    .is_some_and(|(t, _)| t != _from.raw())
                {
                    ClientEvent::Consumed
                } else {
                    self.retry_locate(ctx, token)
                }
            }
            Wire::NotResponsible {
                about, token: None, ..
            } => {
                // Our own registration/update hit a stale IAgent.
                if about == ctx.self_id() {
                    self.refresh_own_iagent(ctx);
                }
                ClientEvent::Consumed
            }
            _ => ClientEvent::NotMine,
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) -> ClientEvent {
        let Some(msg) = Wire::from_payload(payload) else {
            return ClientEvent::NotMine;
        };
        match msg {
            // Our cached IAgent retired (merge) between updates.
            Wire::Update { .. } | Wire::Register { .. } => {
                self.refresh_own_iagent(ctx);
                ClientEvent::Consumed
            }
            // The IAgent we queried is gone or mid-migration; retry after a
            // short backoff (an immediate retry would burn the budget
            // inside the outage window).
            Wire::Locate { token, .. } => {
                self.tracker
                    .arm_timer(ctx, self.config.bounce_retry_delay, token);
                ClientEvent::Consumed
            }
            Wire::Resolve { .. } | Wire::ResolveFresh { .. } => {
                // LHAgents are static; only injected faults get here. The
                // retry timer recovers the operation.
                ClientEvent::Consumed
            }
            _ => ClientEvent::NotMine,
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) -> ClientEvent {
        if self.register_watchdog == Some(timer) {
            self.register_watchdog = None;
            if !self.registered {
                // Some leg of the handshake was lost: start over.
                self.register(ctx);
            }
            return ClientEvent::Consumed;
        }
        match self
            .tracker
            .on_timer(timer, self.config.max_locate_attempts)
        {
            Some(decision) => {
                // A live timer firing means the attempt got no answer:
                // one unreachability signal against the tracker it was
                // sent to. (The give-up case feeds the map inside `act`.)
                if let Retry::Again { token, .. } = decision {
                    if let Some((_, node)) = self.tracker.noted_tracker(token) {
                        self.health.on_timeout(node);
                    }
                }
                self.act(ctx, decision)
            }
            None => ClientEvent::NotMine,
        }
    }

    fn send_via(&mut self, ctx: &mut AgentCtx<'_>, target: AgentId, data: Vec<u8>) -> bool {
        let me = ctx.self_id();
        self.send_local_resolve(
            ctx,
            &Wire::DeliverVia {
                target,
                from: me,
                data,
                ttl: MAIL_MAX_HOPS,
            },
        );
        true
    }
}
