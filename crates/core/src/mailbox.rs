//! Tracker-side mail buffering, for guaranteed delivery to fast movers.
//!
//! The paper closes its related work with the open problem of "guaranteed
//! agent discovery; that is, ensuring that the location of an agent is
//! found even if an agent moves faster than the requests for its location"
//! (§6, citing Moreau and Murphy–Picco). The locate-then-send pattern
//! loses that race: by the time the answer arrives, the agent has moved.
//!
//! This module implements the tracker-mediated alternative: a sender hands
//! the message to the location mechanism (`DeliverVia`), which routes it
//! to the responsible tracker; the tracker forwards it to the agent's
//! recorded node, and — the guarantee — if the agent is mid-flight, the
//! message waits in the tracker's [`Mailbox`] and rides out on the
//! agent's very next location update. The agent's updates are the one
//! signal that always outruns the agent.

use agentrack_platform::AgentId;
use agentrack_sim::{SimDuration, SimTime};

/// One buffered message awaiting its recipient's next location update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailItem {
    /// The recipient.
    pub target: AgentId,
    /// The original sender (restored as the `from` of the final delivery).
    pub from: AgentId,
    /// The application payload bytes.
    pub data: Vec<u8>,
    /// When the item expires undelivered.
    pub deadline: SimTime,
}

/// A tracker's buffer of undeliverable-right-now messages.
///
/// # Examples
///
/// ```
/// use agentrack_core::Mailbox;
/// use agentrack_platform::AgentId;
/// use agentrack_sim::{SimDuration, SimTime};
///
/// let mut mailbox = Mailbox::new(SimDuration::from_secs(10));
/// mailbox.push(SimTime::ZERO, AgentId::new(7), AgentId::new(1), vec![1, 2]);
/// let out = mailbox.take_for(AgentId::new(7));
/// assert_eq!(out.len(), 1);
/// assert!(mailbox.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    items: Vec<MailItem>,
    ttl: SimDuration,
}

impl Mailbox {
    /// Creates an empty mailbox whose items expire after `ttl`.
    #[must_use]
    pub fn new(ttl: SimDuration) -> Self {
        Mailbox {
            items: Vec::new(),
            ttl,
        }
    }

    /// Buffers a message for `target`.
    pub fn push(&mut self, now: SimTime, target: AgentId, from: AgentId, data: Vec<u8>) {
        self.items.push(MailItem {
            target,
            from,
            data,
            deadline: now + self.ttl,
        });
    }

    /// Removes and returns every buffered message for `target` (its
    /// location just became known).
    #[must_use]
    pub fn take_for(&mut self, target: AgentId) -> Vec<MailItem> {
        let (out, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.items)
            .into_iter()
            .partition(|m| m.target == target);
        self.items = keep;
        out
    }

    /// Re-routes every buffered item through `route`: items whose target no
    /// longer belongs to this tracker are drained and handed to the
    /// closure (used after a rehash installs a new hash-function version).
    pub fn drain_if(&mut self, mut gone: impl FnMut(&MailItem) -> bool) -> Vec<MailItem> {
        let (out, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.items)
            .into_iter()
            .partition(|m| gone(m));
        self.items = keep;
        out
    }

    /// Drops expired items, returning how many were lost.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.items.len();
        self.items.retain(|m| m.deadline > now);
        before - self.items.len()
    }

    /// Number of buffered items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Hop budget for tracker-to-tracker mail routing: chases across stale
/// copies converge within a few rehash generations; past this many hops
/// something is wrong and the mail is dropped rather than looped.
pub const MAIL_MAX_HOPS: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    fn item_data(items: &[MailItem]) -> Vec<&[u8]> {
        items.iter().map(|m| m.data.as_slice()).collect()
    }

    #[test]
    fn push_take_roundtrip() {
        let mut mb = Mailbox::new(SimDuration::from_secs(1));
        mb.push(SimTime::ZERO, AgentId::new(1), AgentId::new(9), vec![1]);
        mb.push(SimTime::ZERO, AgentId::new(2), AgentId::new(9), vec![2]);
        mb.push(SimTime::ZERO, AgentId::new(1), AgentId::new(8), vec![3]);
        assert_eq!(mb.len(), 3);
        let for_one = mb.take_for(AgentId::new(1));
        assert_eq!(item_data(&for_one), [&[1u8][..], &[3u8][..]]);
        assert_eq!(mb.len(), 1);
        assert!(mb.take_for(AgentId::new(3)).is_empty());
    }

    #[test]
    fn expiry_drops_old_items() {
        let mut mb = Mailbox::new(SimDuration::from_secs(1));
        mb.push(SimTime::ZERO, AgentId::new(1), AgentId::new(9), vec![1]);
        let later = SimTime::ZERO + SimDuration::from_millis(500);
        mb.push(later, AgentId::new(2), AgentId::new(9), vec![2]);
        assert_eq!(mb.expire(SimTime::ZERO + SimDuration::from_millis(1100)), 1);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.expire(SimTime::ZERO + SimDuration::from_secs(2)), 1);
        assert!(mb.is_empty());
    }

    #[test]
    fn drain_if_partitions() {
        let mut mb = Mailbox::new(SimDuration::from_secs(1));
        for i in 0..6u64 {
            mb.push(
                SimTime::ZERO,
                AgentId::new(i),
                AgentId::new(9),
                vec![i as u8],
            );
        }
        let drained = mb.drain_if(|m| m.target.raw() % 2 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(mb.len(), 3);
    }
}
