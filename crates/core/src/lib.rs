//! # agentrack-core
//!
//! The scalable hash-based mobile-agent location mechanism of Kastidou,
//! Pitoura and Samaras (ICDCSW 2003), implemented as behaviours on the
//! `agentrack-platform` mobile-agent platform, plus the baseline schemes it
//! is evaluated against.
//!
//! ## The mechanism
//!
//! * **IAgents** ([`IAgentBehavior`]) track the precise current location of
//!   the mobile agents the hash function assigns to them, keep per-agent
//!   request statistics, and request splits/merges when their observed
//!   message rate crosses `T_max`/`T_min`.
//! * The **HAgent** ([`HAgentBehavior`]) owns the primary copy of the
//!   [`HashFunction`] (the extendible hash tree plus the IAgent directory)
//!   and serialises rehash operations, planning even splits from the
//!   requester's load statistics ([`plan_split`]).
//! * **LHAgents** ([`LHAgentBehavior`]) hold lazily updated secondary
//!   copies, refreshed on demand when a client detects staleness via a
//!   `NotResponsible` answer.
//! * [`HashedScheme`] bootstraps the cast and hands out [`HashedClient`]
//!   state machines that mobile agents embed for registration, movement
//!   updates and two-phase locates.
//!
//! ## Baselines
//!
//! * [`CentralizedScheme`] — the paper's comparator: one tracker for the
//!   whole system.
//! * `HomeRegistryScheme` / `ForwardingScheme` — Ajanta-like and
//!   Voyager-like schemes from the paper's related-work section, used by
//!   the extended baseline panel experiment.
//!
//! All schemes implement [`LocationScheme`] and their clients implement
//! [`DirectoryClient`], so workloads and experiments are scheme-agnostic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod centralized;
mod config;
mod forwarding;
mod geo;
mod hagent;
mod hashed;
mod home;
mod iagent;
mod lhagent;
mod mailbox;
mod plan;
mod replica;
mod retry;
mod scheme;
mod stats;
mod wire;

pub use centralized::{CentralBehavior, CentralizedClient, CentralizedScheme};
pub use config::LocationConfig;
pub use forwarding::{ForwarderBehavior, ForwardingClient, ForwardingScheme};
pub use geo::{ReachabilityMap, RegionState};
pub use hagent::{HAgentBehavior, StandbyHAgentBehavior};
pub use hashed::{HashedClient, HashedScheme};
pub use home::{HomeRegistryBehavior, HomeRegistryClient, HomeRegistryScheme};
pub use iagent::IAgentBehavior;
pub use lhagent::LHAgentBehavior;
pub use mailbox::{MailItem, Mailbox, MAIL_MAX_HOPS};
pub use plan::{plan_split, PlanError, SplitPlan};
pub use replica::{
    replica_usable, RecoveryPhase, RecoveryState, ReplicaEntry, ReplicaStore, Replicator,
};
pub use retry::{LocateTracker, Retry};
pub use scheme::{
    ClientEvent, ClientFactory, CopyRole, DirectoryClient, LocationScheme, SchemeStats,
    SharedSchemeStats,
};
pub use stats::LoadStats;
pub use wire::{key_of, DenyReason, Freshness, HashFunction, Wire};
