//! The Local Hash Agent (LHAgent): one per node, holding a lazily updated
//! secondary copy of the hash function.
//!
//! "For reasons of efficiency, copies of this hash function are maintained
//! locally in every node of the system. These copies may be temporally
//! out-of-date (secondary copies)." Updates propagate on demand: a client
//! that hits a `NotResponsible` answer asks its LHAgent to `ResolveFresh`,
//! which makes the LHAgent fetch the primary copy from the HAgent before
//! answering (paper §4.3).

use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, TimerId};
use agentrack_sim::{CorrId, SimDuration, SimTime, TraceEvent};

use crate::config::LocationConfig;
use crate::scheme::{CopyRole, SharedSchemeStats};
use crate::wire::{HashFunction, Wire};

/// Behaviour of an LHAgent.
#[derive(Debug)]
pub struct LHAgentBehavior {
    hf: HashFunction,
    /// Hash-function sources, primary first, then standbys (failover
    /// order).
    hagents: Vec<(AgentId, NodeId)>,
    /// Index of the source currently fetched from.
    current_hagent: usize,
    /// Resolves waiting for a fresh copy:
    /// `(requester, target, token, corr)`.
    waiting: Vec<(AgentId, AgentId, Option<u64>, Option<CorrId>)>,
    /// Deregisters whose forward bounced off a tracker that no longer
    /// exists, waiting for a fresh copy to re-route. The dying sender is
    /// gone, so this LHAgent is the only party left who can retry.
    pending_dereg: Vec<(AgentId, u32)>,
    fetch_in_flight: bool,
    /// When the in-flight fetch was sent; a reply overdue past the timeout
    /// (lost to the network, or the HAgent died without a bounce) clears
    /// the flag so waiting clients are not wedged forever.
    fetch_sent_at: SimTime,
    /// Periodic version-audit interval: when set, the LHAgent re-fetches
    /// the hash function on a timer so its copy converges (and failover
    /// fires) even without client traffic.
    audit: Option<SimDuration>,
    audit_timer: Option<TimerId>,
    shared: SharedSchemeStats,
    /// How long to wait for a `HashFnCopy` reply before assuming loss.
    fetch_timeout: SimDuration,
    /// All-sources-dead backoff: first delay, doubling per failed round.
    backoff_base: SimDuration,
    /// Ceiling of the exponential backoff.
    backoff_cap: SimDuration,
    /// Consecutive rounds in which every source bounced; indexes the
    /// exponential backoff, reset by any received copy.
    failed_rounds: u32,
}

impl LHAgentBehavior {
    /// Creates an LHAgent holding an initial secondary copy.
    #[must_use]
    pub fn new(
        hf: HashFunction,
        hagent: AgentId,
        hagent_node: NodeId,
        shared: SharedSchemeStats,
    ) -> Self {
        LHAgentBehavior {
            hf,
            hagents: vec![(hagent, hagent_node)],
            current_hagent: 0,
            waiting: Vec::new(),
            pending_dereg: Vec::new(),
            fetch_in_flight: false,
            fetch_sent_at: SimTime::ZERO,
            audit: None,
            audit_timer: None,
            shared,
            fetch_timeout: SimDuration::from_millis(800),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(2),
            failed_rounds: 0,
        }
    }

    /// Applies the fetch timing knobs from the scheme configuration: the
    /// reply timeout and the all-sources-dead backoff base and cap.
    #[must_use]
    pub fn with_timing(mut self, config: &LocationConfig) -> Self {
        self.fetch_timeout = config.fetch_timeout;
        self.backoff_base = config.fetch_backoff_base;
        self.backoff_cap = config.fetch_backoff_cap;
        self
    }

    /// Adds a standby HAgent to fail over to when the primary is
    /// unreachable.
    #[must_use]
    pub fn with_standby(mut self, standby: AgentId, node: NodeId) -> Self {
        self.hagents.push((standby, node));
        self
    }

    /// Enables periodic version audits at `interval` (`None` keeps the
    /// paper's purely lazy refresh).
    #[must_use]
    pub fn with_audit(mut self, interval: Option<SimDuration>) -> Self {
        self.audit = interval;
        self
    }

    /// Answers a resolve from the local copy. Requesters are by definition
    /// on this node ("its own local LHAgent").
    fn answer(
        &self,
        ctx: &mut AgentCtx<'_>,
        requester: AgentId,
        target: AgentId,
        token: Option<u64>,
        corr: Option<CorrId>,
    ) {
        let (iagent, node) = self.hf.resolve(target);
        // The responsible tracker's buddy replica rides along so clients
        // can hedge freshness-bounded locates cross-region when the
        // tracker itself looks unreachable.
        let buddy = self.hf.buddy_of(iagent);
        let here = ctx.node();
        let me = ctx.self_id();
        ctx.trace().emit(ctx.now(), || TraceEvent::MessageSend {
            kind: "Resolved",
            corr,
            from: me.raw(),
            to: requester.raw(),
            node: here,
        });
        ctx.send(
            requester,
            here,
            Wire::Resolved {
                target,
                iagent,
                node,
                buddy,
                version: self.hf.version,
                token,
                corr,
            }
            .payload(),
        );
    }

    /// Re-routes deregisters that bounced off merged-away trackers, under
    /// whatever copy the LHAgent now holds.
    fn flush_pending_dereg(&mut self, ctx: &mut AgentCtx<'_>) {
        let pending = std::mem::take(&mut self.pending_dereg);
        for (agent, ttl) in pending {
            let (iagent, node) = self.hf.resolve(agent);
            ctx.send(iagent, node, Wire::Deregister { agent, ttl }.payload());
        }
    }

    fn fetch(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.fetch_in_flight {
            return;
        }
        self.fetch_in_flight = true;
        self.fetch_sent_at = ctx.now();
        let here = ctx.node();
        let (hagent, node) = self.hagents[self.current_hagent];
        ctx.send(
            hagent,
            node,
            Wire::FetchHashFn {
                have_version: self.hf.version,
                reply_node: here,
            }
            .payload(),
        );
        // Reply-loss watchdog: if no copy arrives, the timer clears the
        // in-flight flag and retries.
        ctx.set_timer(self.fetch_timeout);
    }

    /// Capped exponential backoff (`base · 2^rounds`, capped) plus up to
    /// one base interval of deterministic jitter, so co-located LHAgents
    /// do not stampede the control plane the moment a source returns.
    fn backoff_delay(&mut self, ctx: &mut AgentCtx<'_>) -> SimDuration {
        let base = self.backoff_base.as_nanos().max(1);
        let cap = self.backoff_cap.as_nanos().max(base);
        let exp = base
            .saturating_mul(1u64 << self.failed_rounds.min(16))
            .min(cap);
        let jitter = ctx.rng().next_u64() % base;
        SimDuration::from_nanos(exp.saturating_add(jitter))
    }
}

impl Agent for LHAgentBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.shared
            .record_version(ctx.self_id().raw(), CopyRole::Secondary, self.hf.version);
        if let Some(interval) = self.audit {
            self.audit_timer = Some(ctx.set_timer(interval));
        }
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, _lost_soft_state: bool) {
        // Whatever fetch was in flight died with the node, and so did
        // every timer. The secondary copy itself is kept: it may be
        // stale, which lazy refresh (or the audit) repairs.
        self.fetch_in_flight = false;
        self.failed_rounds = 0;
        self.waiting.clear();
        if let Some(interval) = self.audit {
            self.audit_timer = Some(ctx.set_timer(interval));
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        {
            let me = ctx.self_id();
            let here = ctx.node();
            let queued = ctx.queued();
            ctx.trace().emit(ctx.now(), || TraceEvent::MessageRecv {
                kind: msg.kind(),
                corr: msg.corr(),
                by: me.raw(),
                node: here,
                queued,
            });
        }
        match msg {
            Wire::Resolve {
                target,
                token,
                corr,
            } => self.answer(ctx, from, target, token, corr),
            Wire::DeliverVia {
                target,
                from: origin,
                data,
                ttl,
            } => {
                // Entry point of mediated delivery: route the mail toward
                // the responsible IAgent under the local copy (which may
                // be stale — the trackers chase the rest of the way).
                let (iagent, node) = self.hf.resolve(target);
                ctx.send(
                    iagent,
                    node,
                    Wire::DeliverVia {
                        target,
                        from: origin,
                        data,
                        ttl,
                    }
                    .payload(),
                );
            }
            Wire::ResolveFresh {
                target,
                token,
                corr,
            } => {
                self.waiting.push((from, target, token, corr));
                self.fetch(ctx);
            }
            Wire::Deregister { agent, ttl } => {
                // A dying agent deregisters through its local LHAgent
                // rather than its cached tracker: the sender disposes
                // itself right after the send, so a bounce off a tracker
                // that has since merged away would be lost with it. The
                // LHAgent outlives the agent — route toward the owner
                // under the local copy (which may be stale — the trackers
                // chase the rest of the way), and retry bounces below.
                let (iagent, node) = self.hf.resolve(agent);
                ctx.send(iagent, node, Wire::Deregister { agent, ttl }.payload());
            }
            Wire::HashFnCopy { hf } => {
                // Either the answer to our fetch or an eager push from the
                // HAgent. An old copy must not satisfy a pending
                // ResolveFresh: the clients waiting already *rejected* the
                // version we hold, so only a strictly newer copy answers
                // them (the watchdog retries if the real reply was lost).
                match hf.version.cmp(&self.hf.version) {
                    std::cmp::Ordering::Greater => {
                        self.hf = hf;
                        self.shared.record_version(
                            ctx.self_id().raw(),
                            CopyRole::Secondary,
                            self.hf.version,
                        );
                        self.fetch_in_flight = false;
                        self.failed_rounds = 0;
                        let waiting = std::mem::take(&mut self.waiting);
                        for (requester, target, token, corr) in waiting {
                            self.answer(ctx, requester, target, token, corr);
                        }
                        self.flush_pending_dereg(ctx);
                    }
                    std::cmp::Ordering::Equal => {
                        // Authoritative confirmation that our copy is
                        // current: the freshest answer that exists.
                        self.fetch_in_flight = false;
                        self.failed_rounds = 0;
                        let waiting = std::mem::take(&mut self.waiting);
                        for (requester, target, token, corr) in waiting {
                            self.answer(ctx, requester, target, token, corr);
                        }
                        self.flush_pending_dereg(ctx);
                    }
                    std::cmp::Ordering::Less => {
                        // A stale eager push racing our fetch: ignore it;
                        // the real reply (or the watchdog) handles waiting
                        // clients.
                    }
                }
            }
            _ => {}
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) {
        // Our fetch bounced: the current HAgent is down. Fail over to the
        // next source; if that wraps back to the start (every source
        // tried), back off before retrying so a fully dead control plane
        // does not produce a hot bounce loop.
        // A forwarded deregister bounced: the resolved tracker was merged
        // away mid-flight. Park it, refetch the hash function, and re-route
        // under the newer copy (the ttl bounds pathological re-bounces).
        if let Some(Wire::Deregister { agent, ttl }) = Wire::from_payload(payload) {
            if ttl > 0 {
                self.pending_dereg.push((agent, ttl - 1));
                self.fetch(ctx);
            }
            return;
        }
        if matches!(Wire::from_payload(payload), Some(Wire::FetchHashFn { .. })) {
            self.fetch_in_flight = false;
            let from_source = self.hagents[self.current_hagent].0;
            self.current_hagent = (self.current_hagent + 1) % self.hagents.len();
            let to_source = self.hagents[self.current_hagent].0;
            let me = ctx.self_id();
            ctx.trace().emit(ctx.now(), || TraceEvent::Failover {
                by: me.raw(),
                from_source: from_source.raw(),
                to_source: to_source.raw(),
            });
            if self.waiting.is_empty() && self.pending_dereg.is_empty() {
                return;
            }
            if self.current_hagent == 0 {
                // Every source bounced in a row: back off exponentially
                // (with jitter) instead of hot-looping against a dead
                // control plane; the timer retries the fetch.
                let delay = self.backoff_delay(ctx);
                self.failed_rounds = self.failed_rounds.saturating_add(1);
                ctx.set_timer(delay);
            } else {
                self.fetch(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.audit_timer == Some(timer) {
            self.audit_timer = self.audit.map(|interval| ctx.set_timer(interval));
            if !self.fetch_in_flight {
                self.fetch(ctx);
            }
            return;
        }
        if self.fetch_in_flight
            && ctx.now().saturating_since(self.fetch_sent_at) >= self.fetch_timeout
        {
            // The reply never came (lost, or the HAgent crashed mid-fetch):
            // try the next source.
            self.fetch_in_flight = false;
            let from_source = self.hagents[self.current_hagent].0;
            self.current_hagent = (self.current_hagent + 1) % self.hagents.len();
            let to_source = self.hagents[self.current_hagent].0;
            let me = ctx.self_id();
            ctx.trace().emit(ctx.now(), || TraceEvent::Failover {
                by: me.raw(),
                from_source: from_source.raw(),
                to_source: to_source.raw(),
            });
        }
        if !self.waiting.is_empty() || !self.pending_dereg.is_empty() {
            self.fetch(ctx);
        }
    }
}
