//! Client-side locate retry bookkeeping, shared by every scheme's client.
//!
//! A locate operation retries on negative answers (`NotFound`,
//! `NotResponsible`, delivery bounces) and on a timeout, up to a budget.
//! The subtlety is that both sources race: an answer that already triggered
//! a retry must not let the (now stale) timeout trigger a second one, or
//! the budget burns twice as fast as intended. The tracker therefore stamps
//! each armed timer with the attempt number it guards and ignores timers
//! whose attempt has already progressed.

use std::collections::HashMap;

use agentrack_platform::{AgentCtx, AgentId, NodeId, TimerId};
use agentrack_sim::{GiveUpCause, SimDuration, SimTime};

use crate::wire::Freshness;

/// What the caller should do about a locate after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retry {
    /// Send another attempt for this target (the tracker already counted
    /// it); arm a timer via [`LocateTracker::arm_timer`] after sending.
    Again {
        /// The locate's correlation token.
        token: u64,
        /// The agent being located.
        target: AgentId,
    },
    /// Budget exhausted: report failure upstream.
    GiveUp {
        /// The locate's correlation token.
        token: u64,
        /// The agent that could not be located.
        target: AgentId,
        /// What ended the final attempt: a timeout (no answer at all) or
        /// an explicit negative answer. Chaos runs read this off the
        /// trace to tell dead trackers from honest "not found"s.
        cause: GiveUpCause,
        /// The tracker the final attempt was sent to, when known (set via
        /// [`LocateTracker::note_tracker`]); lets the caller charge the
        /// give-up to the per-tracker metrics row of the failing tracker.
        tracker: Option<u64>,
        /// That tracker's node, when known — the caller compares it with
        /// its own node/region to charge the give-up to the remote or
        /// local counter.
        tracker_node: Option<NodeId>,
    },
    /// Nothing to do (operation already finished, or stale timer).
    Nothing,
}

#[derive(Debug, Clone)]
struct Op {
    target: AgentId,
    attempts: u32,
    started: SimTime,
    /// Raw id of the tracker the current attempt was sent to, if known.
    tracker: Option<u64>,
    /// That tracker's node, if known.
    tracker_node: Option<NodeId>,
    /// The tracker's buddy replica (from the resolve), if known — the
    /// hedge destination for freshness-bounded locates.
    buddy: Option<(AgentId, NodeId)>,
    /// The freshness requirement the locate was issued with; retries
    /// re-send the same bound.
    freshness: Freshness,
}

/// Tracks in-flight locate operations and their retry budgets.
#[derive(Debug, Default)]
pub struct LocateTracker {
    ops: HashMap<u64, Op>,
    /// timer → (token, attempt it guards).
    timers: HashMap<TimerId, (u64, u32)>,
}

impl LocateTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins tracking a locate (attempt 1) issued at `now`, with no
    /// freshness requirement ([`Freshness::Any`]).
    pub fn start(&mut self, token: u64, target: AgentId, now: SimTime) {
        self.start_with(token, target, now, Freshness::Any);
    }

    /// Begins tracking a locate (attempt 1) issued at `now` under the
    /// given freshness requirement; every retry of the operation carries
    /// the same bound.
    pub fn start_with(&mut self, token: u64, target: AgentId, now: SimTime, freshness: Freshness) {
        self.ops.insert(
            token,
            Op {
                target,
                attempts: 1,
                started: now,
                tracker: None,
                tracker_node: None,
                buddy: None,
                freshness,
            },
        );
    }

    /// Records which tracker (and its node) the current attempt of
    /// `token` was sent to, so a give-up can be charged to that tracker's
    /// metrics and split by remote-vs-local destination.
    pub fn note_tracker(&mut self, token: u64, tracker: u64, node: NodeId) {
        if let Some(op) = self.ops.get_mut(&token) {
            op.tracker = Some(tracker);
            op.tracker_node = Some(node);
        }
    }

    /// Records the current tracker's buddy replica for `token`, the hedge
    /// destination for freshness-bounded locates.
    pub fn note_buddy(&mut self, token: u64, buddy: Option<(AgentId, NodeId)>) {
        if let Some(op) = self.ops.get_mut(&token) {
            op.buddy = buddy;
        }
    }

    /// The tracker (raw id and node) the current attempt of `token` was
    /// sent to, when both were noted.
    #[must_use]
    pub fn noted_tracker(&self, token: u64) -> Option<(u64, NodeId)> {
        let op = self.ops.get(&token)?;
        Some((op.tracker?, op.tracker_node?))
    }

    /// The current tracker's buddy replica for `token`, if known.
    #[must_use]
    pub fn buddy(&self, token: u64) -> Option<(AgentId, NodeId)> {
        self.ops.get(&token).and_then(|op| op.buddy)
    }

    /// Arms the timeout guarding the current attempt of `token`.
    pub fn arm_timer(&mut self, ctx: &mut AgentCtx<'_>, timeout: SimDuration, token: u64) {
        let Some(op) = self.ops.get(&token) else {
            return;
        };
        let attempt = op.attempts;
        let timer = ctx.set_timer(timeout);
        self.timers.insert(timer, (token, attempt));
    }

    /// A negative answer arrived for `token`: consume one attempt.
    pub fn on_negative(&mut self, token: u64, max_attempts: u32) -> Retry {
        self.consume_attempt(token, max_attempts, GiveUpCause::Negative)
    }

    /// A timer fired. Returns `None` if the timer was not armed by this
    /// tracker (the caller's own timer); otherwise the retry decision — a
    /// timer whose attempt already progressed is stale and does nothing.
    pub fn on_timer(&mut self, timer: TimerId, max_attempts: u32) -> Option<Retry> {
        let (token, attempt) = self.timers.remove(&timer)?;
        match self.ops.get(&token) {
            Some(op) if op.attempts == attempt => {
                Some(self.consume_attempt(token, max_attempts, GiveUpCause::Timeout))
            }
            _ => Some(Retry::Nothing),
        }
    }

    /// Consumes one attempt of `token`; a give-up carries the cause of
    /// the event that burned the final attempt.
    fn consume_attempt(&mut self, token: u64, max_attempts: u32, cause: GiveUpCause) -> Retry {
        let Some(op) = self.ops.get_mut(&token) else {
            return Retry::Nothing;
        };
        op.attempts += 1;
        if op.attempts > max_attempts {
            let target = op.target;
            let tracker = op.tracker;
            let tracker_node = op.tracker_node;
            self.ops.remove(&token);
            Retry::GiveUp {
                token,
                target,
                cause,
                tracker,
                tracker_node,
            }
        } else {
            Retry::Again {
                token,
                target: op.target,
            }
        }
    }

    /// The locate completed: stop tracking. Returns the time the
    /// operation started if it was still being tracked (guards against
    /// duplicate answers; the caller uses the start time to record the
    /// end-to-end latency).
    pub fn complete(&mut self, token: u64) -> Option<SimTime> {
        self.ops.remove(&token).map(|op| op.started)
    }

    /// The target of an in-flight locate, if still tracked.
    #[must_use]
    pub fn target(&self, token: u64) -> Option<AgentId> {
        self.ops.get(&token).map(|op| op.target)
    }

    /// The attempt count of an in-flight locate, if still tracked.
    #[must_use]
    pub fn attempts(&self, token: u64) -> Option<u32> {
        self.ops.get(&token).map(|op| op.attempts)
    }

    /// The freshness requirement an in-flight locate was issued with, if
    /// still tracked; retries must re-send this bound verbatim.
    #[must_use]
    pub fn freshness(&self, token: u64) -> Option<Freshness> {
        self.ops.get(&token).map(|op| op.freshness)
    }

    /// Number of in-flight locates.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_answers_consume_the_budget() {
        let mut t = LocateTracker::new();
        t.start_with(1, AgentId::new(9), SimTime::ZERO, Freshness::BoundedMs(500));
        t.note_tracker(1, 42, NodeId::new(3));
        assert_eq!(t.freshness(1), Some(Freshness::BoundedMs(500)));
        assert_eq!(
            t.on_negative(1, 3),
            Retry::Again {
                token: 1,
                target: AgentId::new(9)
            }
        );
        assert_eq!(
            t.on_negative(1, 3),
            Retry::Again {
                token: 1,
                target: AgentId::new(9)
            }
        );
        assert_eq!(
            t.on_negative(1, 3),
            Retry::GiveUp {
                token: 1,
                target: AgentId::new(9),
                cause: GiveUpCause::Negative,
                tracker: Some(42),
                tracker_node: Some(NodeId::new(3)),
            }
        );
        assert_eq!(t.on_negative(1, 3), Retry::Nothing);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn completion_stops_tracking() {
        let mut t = LocateTracker::new();
        let issued = SimTime::ZERO + SimDuration::from_millis(5);
        t.start(7, AgentId::new(1), issued);
        assert_eq!(t.target(7), Some(AgentId::new(1)));
        assert_eq!(t.attempts(7), Some(1));
        assert_eq!(t.complete(7), Some(issued));
        assert_eq!(t.complete(7), None);
        assert_eq!(t.on_negative(7, 3), Retry::Nothing);
    }

    // Timer interplay is exercised through the platform in the scheme
    // integration tests; `arm_timer` needs an `AgentCtx`, which only the
    // runtime can construct.
}
