//! The Hash Agent (HAgent): owner of the hash function's primary copy and
//! coordinator of rehashing.
//!
//! "There is a central static agent (HAgent) that keeps the current hash
//! function. Every time the hash function changes, the copy of the HAgent
//! is immediately updated (primary copy)." The paper's HAgent also
//! "ensures that only one such [split or merge] process is in progress at
//! each time" (paper §2.1, §4) — here that single-flight discipline is
//! generalised to a **lease table**: each rehash holds a lease on the
//! [`PrefixRegion`] of the subtree it rewrites, any set of prefix-disjoint
//! rehashes may be in flight at once (up to
//! [`LocationConfig::rehash_concurrency`]), and only overlapping requests
//! are serialised. `rehash_concurrency: 1` reproduces the paper's protocol
//! exactly and is kept as the ablation arm of experiment E17.
//!
//! A split runs as a small two-phase protocol:
//!
//! 1. An overloaded IAgent sends `SplitRequest` with its per-agent load
//!    statistics. The HAgent plans the split point (complex candidates
//!    first, then simple `m = 1, 2, …`; see [`crate::plan`]), checks the
//!    affected region against the lease table and the per-region cooldown
//!    list, grants a lease, creates the new IAgent on a round-robin-chosen
//!    node, and waits.
//! 2. The new IAgent reports `IAgentReady { lease }`; the HAgent re-derives
//!    the planned candidate against the current tree generation (disjoint
//!    commits in the meantime bump it), applies the split to the primary
//!    tree, bumps the version, and installs the new version on every
//!    *involved* IAgent, which triggers their record handoffs.
//!
//! Denials carry a structured [`DenyReason`] so requesters can back off
//! proportionally (short for a busy pipeline, long for a read-only
//! standby; see `IAgentBehavior`).
//!
//! Merges commit immediately (no second phase) but take the same region
//! gate: the merged leaf's *parent* region must not overlap any lease or
//! cooling region, because a merge rewrites the sibling subtree's labels.

use agentrack_hashtree::{IAgentId, PrefixRegion, Side};
use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, TimerId};
use agentrack_sim::{SimTime, TraceEvent};

use std::collections::HashMap;

use crate::config::LocationConfig;
use crate::iagent::IAgentBehavior;
use crate::plan::plan_split;
use crate::replica::ReplicaStore;
use crate::scheme::{CopyRole, SharedSchemeStats};
use crate::wire::{DenyReason, HashFunction, Wire};

/// A granted, in-flight split: the HAgent holds the affected subtree's
/// region until the new IAgent reports ready (commit) or the lease times
/// out (abort). Requests whose region overlaps a held lease are denied
/// `Busy`.
#[derive(Debug)]
struct RehashLease {
    /// Monotonic lease id; carried by the fresh IAgent's
    /// [`Wire::IAgentReady`] so a ready report from an orphan of an
    /// aborted lease cannot commit a newer one.
    id: u64,
    requester: AgentId,
    new_agent: AgentId,
    new_node: NodeId,
    /// The planned partition bit. The full candidate is *re-derived* from
    /// this at commit time (`HashTree::refreshed_candidate`): disjoint
    /// commits bump the tree generation, which would make the stored
    /// candidate stale, but they cannot touch this lease's subtree — so
    /// the bit still identifies the same split.
    key_bit: usize,
    new_side: Side,
    region: PrefixRegion,
    started_at: SimTime,
}

/// Behaviour of a standby HAgent: a hot replica of the hash function's
/// primary copy (the paper's §7 fault-tolerance direction — "making the
/// HAgent that keeps this copy a vulnerability point").
///
/// The primary pushes every new version here. The standby serves
/// [`Wire::FetchHashFn`] so secondary copies keep refreshing if the
/// primary crashes, but it is *read-only*: rehash requests are denied, so
/// the tree freezes (yet keeps answering) until the primary returns.
#[derive(Debug)]
pub struct StandbyHAgentBehavior {
    hf: HashFunction,
    shared: SharedSchemeStats,
    /// Replica copies held as the fallback buddy: when the tree has a
    /// single leaf there is no sibling IAgent, so the lone tracker
    /// replicates its records here.
    replica_store: ReplicaStore,
}

impl StandbyHAgentBehavior {
    /// Creates a standby seeded with the bootstrap hash function.
    #[must_use]
    pub fn new(hf: HashFunction, shared: SharedSchemeStats) -> Self {
        StandbyHAgentBehavior {
            hf,
            shared,
            replica_store: ReplicaStore::default(),
        }
    }
}

impl Agent for StandbyHAgentBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.shared
            .record_version(ctx.self_id().raw(), CopyRole::Standby, self.hf.version);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        match msg {
            Wire::HashFnCopy { hf } if hf.version > self.hf.version => {
                self.hf = hf;
                self.shared
                    .record_version(ctx.self_id().raw(), CopyRole::Standby, self.hf.version);
            }
            Wire::FetchHashFn { reply_node, .. } => {
                self.shared.update(|s| s.hf_fetches += 1);
                ctx.send(
                    from,
                    reply_node,
                    Wire::HashFnCopy {
                        hf: self.hf.clone(),
                    }
                    .payload(),
                );
            }
            Wire::SplitRequest { .. } | Wire::MergeRequest { .. } => {
                // Read-only replica: rehashing waits for the primary. The
                // `ReadOnly` reason tells the requester to back off long —
                // retrying before the primary returns is futile.
                self.shared.update(|s| s.rehash_denied += 1);
                if let Some(node) = self.hf.locations.get(&IAgentId::new(from.raw())).copied() {
                    ctx.send(
                        from,
                        node,
                        Wire::RehashDenied {
                            reason: DenyReason::ReadOnly,
                        }
                        .payload(),
                    );
                }
            }
            Wire::RecordSync {
                epoch,
                seq,
                records,
                rate,
                reply_node,
            } => {
                // Fallback buddy duty (single-leaf tree): hold the copy.
                self.replica_store
                    .apply_sync(from, epoch, seq, records, rate, ctx.now());
                ctx.send(
                    from,
                    reply_node,
                    Wire::RecordSyncAck { epoch, seq }.payload(),
                );
            }
            Wire::ReplicaPull {
                epoch: _,
                reply_node,
            } => {
                let (epoch, seq, records, rate, age_ms) = match self.replica_store.get(from) {
                    Some(e) => (
                        e.epoch,
                        e.seq,
                        e.records.iter().map(|(&a, &n)| (a, n)).collect(),
                        e.rate,
                        e.age_ms(ctx.now()),
                    ),
                    None => (0, 0, Vec::new(), 0.0, 0),
                };
                ctx.send(
                    from,
                    reply_node,
                    Wire::ReplicaSet {
                        epoch,
                        seq,
                        records,
                        rate,
                        age_ms,
                    }
                    .payload(),
                );
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, _ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        if lost_soft_state {
            // Replica copies are soft state; owners keep syncing and
            // repopulate them.
            self.replica_store.clear();
        }
    }
}

/// Behaviour of the HAgent.
#[derive(Debug)]
pub struct HAgentBehavior {
    config: LocationConfig,
    hf: HashFunction,
    /// LHAgent directory, for eager propagation: `(agent, node)` pairs.
    lhagents: Vec<(AgentId, NodeId)>,
    shared: SharedSchemeStats,
    /// In-flight split leases; at most `config.rehash_concurrency`, all
    /// pairwise prefix-disjoint.
    leases: Vec<RehashLease>,
    next_lease: u64,
    /// Regions of recently committed rehashes still cooling down:
    /// `(region, until)`. In the single-flight ablation
    /// (`rehash_concurrency: 1`) the whole key space is recorded instead,
    /// reproducing the paper's global cooldown.
    recent: Vec<(PrefixRegion, SimTime)>,
    next_node: u32,
    node_count: u32,
    standby: Option<(AgentId, NodeId)>,
    /// Installs that bounced (receiver mid-migration); re-sent with the
    /// current primary copy on the next periodic tick.
    reinstall: Vec<AgentId>,
    /// Per-IAgent epoch counters (keyed by raw agent id), bumped on every
    /// `EpochRequest`. Soft state: if it is lost with a crash, a
    /// re-granted low epoch makes [`crate::replica_usable`] reject the
    /// replica — recovery degrades to re-registration only, it never
    /// resurrects records under a wrong fence.
    epochs: HashMap<u64, u64>,
}

impl HAgentBehavior {
    /// Creates the HAgent owning the initial hash function.
    #[must_use]
    pub fn new(
        config: LocationConfig,
        hf: HashFunction,
        lhagents: Vec<(AgentId, NodeId)>,
        node_count: u32,
        shared: SharedSchemeStats,
    ) -> Self {
        shared.set_trackers(hf.tree.iagent_count() as u64);
        HAgentBehavior {
            config,
            hf,
            lhagents,
            shared,
            leases: Vec::new(),
            next_lease: 0,
            recent: Vec::new(),
            next_node: 0,
            node_count,
            standby: None,
            reinstall: Vec::new(),
            epochs: HashMap::new(),
        }
    }

    /// Registers a hot-standby replica; every committed version is pushed
    /// to it.
    #[must_use]
    pub fn with_standby(mut self, standby: AgentId, node: NodeId) -> Self {
        self.standby = Some((standby, node));
        self
    }

    fn deny(&self, ctx: &mut AgentCtx<'_>, to: AgentId, reason: DenyReason) {
        self.shared.update(|s| s.rehash_denied += 1);
        if let Some(node) = self.node_of_iagent(to) {
            ctx.send(to, node, Wire::RehashDenied { reason }.payload());
        }
    }

    /// The region a committed rehash cools down: its own subtree at
    /// `rehash_concurrency > 1`, the whole key space in the single-flight
    /// ablation (the paper's global cooldown).
    fn cooldown_region(&self, region: PrefixRegion) -> PrefixRegion {
        if self.config.rehash_concurrency == 1 {
            PrefixRegion::EVERYTHING
        } else {
            region
        }
    }

    /// Checks a rehash region against the lease table and the cooling
    /// regions; `None` means the region is clear to proceed.
    fn blocked(&self, now: SimTime, region: PrefixRegion) -> Option<DenyReason> {
        if self.leases.iter().any(|l| l.region.overlaps(&region)) {
            return Some(DenyReason::Busy);
        }
        if self
            .recent
            .iter()
            .any(|&(r, until)| now < until && r.overlaps(&region))
        {
            return Some(DenyReason::Cooldown);
        }
        None
    }

    fn node_of_iagent(&self, iagent: AgentId) -> Option<NodeId> {
        self.hf.locations.get(&IAgentId::new(iagent.raw())).copied()
    }

    /// Publishes the tree's height and total consumed-prefix bits, for the
    /// split-strategy ablation.
    fn record_tree_shape(&self) {
        let height = self.hf.tree.height() as u64;
        let depth_bits: u64 = self
            .hf
            .tree
            .iagents()
            .map(|ia| self.hf.tree.consumed_bits(ia).unwrap_or(0) as u64)
            .sum();
        self.shared.update(|s| {
            s.tree_height = height;
            s.depth_bits_total = depth_bits;
        });
    }

    fn pick_node(&mut self) -> NodeId {
        let node = NodeId::new(self.next_node % self.node_count);
        self.next_node += 1;
        node
    }

    /// Installs the (just bumped) primary copy on the involved IAgents and,
    /// when eager propagation is on, pushes it to every LHAgent.
    fn distribute(&self, ctx: &mut AgentCtx<'_>, involved: &[IAgentId]) {
        self.shared
            .record_version(ctx.self_id().raw(), CopyRole::Primary, self.hf.version);
        for &ia in involved {
            let agent = AgentId::new(ia.raw());
            // The node comes from the directory, except for an IAgent that
            // was merged away (no directory entry any more) — the merge
            // handler passes its node explicitly instead.
            if let Some(node) = self.node_of_iagent(agent) {
                ctx.send(
                    agent,
                    node,
                    Wire::InstallHashFn {
                        hf: self.hf.clone(),
                    }
                    .payload(),
                );
            }
        }
        if self.config.eager_propagation {
            for &(lh, node) in &self.lhagents {
                ctx.send(
                    lh,
                    node,
                    Wire::HashFnCopy {
                        hf: self.hf.clone(),
                    }
                    .payload(),
                );
            }
        }
        if let Some((standby, node)) = self.standby {
            ctx.send(
                standby,
                node,
                Wire::HashFnCopy {
                    hf: self.hf.clone(),
                }
                .payload(),
            );
        }
    }

    /// Answers a request while the control plane is administratively
    /// frozen (an operator drain, e.g. the post-quiesce audit). Not
    /// counted as `rehash_denied`: that counter measures protocol denial
    /// traffic (busy/cooldown contention), not a closed admission gate.
    fn deny_frozen(&self, ctx: &mut AgentCtx<'_>, to: AgentId) {
        if let Some(node) = self.node_of_iagent(to) {
            ctx.send(
                to,
                node,
                Wire::RehashDenied {
                    reason: DenyReason::ReadOnly,
                }
                .payload(),
            );
        }
    }

    fn handle_split_request(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        from: AgentId,
        loads: Vec<(AgentId, u64)>,
    ) {
        if self.shared.adaptation_frozen() {
            self.deny_frozen(ctx, from);
            return;
        }
        if self.leases.len() >= self.config.rehash_concurrency {
            self.deny(ctx, from, DenyReason::Busy);
            return;
        }
        let requester = IAgentId::new(from.raw());
        let plan = match plan_split(&self.hf.tree, requester, &loads, &self.config) {
            Ok(plan) => plan,
            Err(_) => {
                self.deny(ctx, from, DenyReason::NoPlan);
                return;
            }
        };
        let region = match self.hf.tree.split_region(&plan.candidate) {
            Ok(region) => region,
            Err(_) => {
                self.deny(ctx, from, DenyReason::NoPlan);
                return;
            }
        };
        if let Some(reason) = self.blocked(ctx.now(), region) {
            self.deny(ctx, from, reason);
            return;
        }
        let id = self.next_lease;
        self.next_lease += 1;
        let new_node = self.pick_node();
        let new_agent = ctx.create_agent(
            Box::new(
                IAgentBehavior::fresh(
                    self.config.clone(),
                    ctx.self_id(),
                    ctx.node(),
                    self.hf.clone(),
                    self.shared.clone(),
                )
                .with_standby(self.standby)
                .with_lease(id),
            ),
            new_node,
        );
        self.leases.push(RehashLease {
            id,
            requester: from,
            new_agent,
            new_node,
            key_bit: plan.candidate.key_bit,
            new_side: plan.new_side,
            region,
            started_at: ctx.now(),
        });
    }

    fn handle_ready(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, lease_id: u64) {
        let Some(pos) = self
            .leases
            .iter()
            .position(|l| l.id == lease_id && l.new_agent == from)
        else {
            return; // an orphaned IAgent from an aborted/abandoned lease
        };
        let lease = self.leases.remove(pos);
        let requester = IAgentId::new(lease.requester.raw());
        let new_ia = IAgentId::new(lease.new_agent.raw());
        // Re-derive the candidate against the current generation: commits
        // in disjoint regions bumped it since the grant, but the lease kept
        // this subtree untouched, so the partition bit still pins the same
        // split (see `HashTree::refreshed_candidate`).
        let applied = self
            .hf
            .tree
            .refreshed_candidate(requester, lease.key_bit)
            .and_then(|candidate| self.hf.tree.apply_split(&candidate, new_ia, lease.new_side));
        let applied = match applied {
            Ok(applied) => applied,
            Err(_) => {
                // Unreachable while region fencing holds (the requester's
                // subtree cannot change under a held lease), but stay safe.
                self.deny(ctx, lease.requester, DenyReason::NoPlan);
                return;
            }
        };
        self.hf.version += 1;
        self.hf.locations.insert(new_ia, lease.new_node);
        self.shared.update(|s| s.splits += 1);
        self.shared.registry().record_split(self.hf.version);
        let version = self.hf.version;
        let from_tracker = lease.requester.raw();
        let to_tracker = lease.new_agent.raw();
        ctx.trace().emit(ctx.now(), || TraceEvent::RehashSplit {
            version,
            from_tracker,
            to_tracker,
        });
        self.shared.set_trackers(self.hf.tree.iagent_count() as u64);
        self.record_tree_shape();

        let mut involved = applied.affected;
        involved.push(new_ia);
        self.hf.refresh_compiled(&involved);
        self.distribute(ctx, &involved);
        self.recent.push((
            self.cooldown_region(lease.region),
            ctx.now() + self.config.rehash_cooldown,
        ));
    }

    fn handle_merge_request(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId) {
        if self.shared.adaptation_frozen() {
            self.deny_frozen(ctx, from);
            return;
        }
        let merged = IAgentId::new(from.raw());
        if !self.config.merge_enabled
            || self.hf.tree.iagent_count() <= 1
            || !self.hf.tree.contains(merged)
        {
            self.deny(ctx, from, DenyReason::NoPlan);
            return;
        }
        if self.leases.len() >= self.config.rehash_concurrency {
            self.deny(ctx, from, DenyReason::Busy);
            return;
        }
        // A merge rewrites the sibling subtree's labels, so it is gated on
        // the *parent's* region — this is what serialises it against any
        // in-flight split under the same parent.
        let region = match self.hf.tree.merge_region(merged) {
            Ok(region) => region,
            Err(_) => {
                self.deny(ctx, from, DenyReason::NoPlan);
                return;
            }
        };
        if let Some(reason) = self.blocked(ctx.now(), region) {
            self.deny(ctx, from, reason);
            return;
        }
        let merged_node = self.node_of_iagent(from);
        let applied = match self.hf.tree.apply_merge(merged) {
            Ok(applied) => applied,
            Err(_) => {
                self.deny(ctx, from, DenyReason::NoPlan);
                return;
            }
        };
        self.hf.version += 1;
        self.hf.locations.remove(&merged);
        self.shared.update(|s| s.merges += 1);
        self.shared.registry().record_merge(self.hf.version);
        let version = self.hf.version;
        let from_tracker = from.raw();
        let into_tracker = applied.absorbers.first().map_or(0, |ia| ia.raw());
        ctx.trace().emit(ctx.now(), || TraceEvent::RehashMerge {
            version,
            from_tracker,
            into_tracker,
        });
        self.shared.set_trackers(self.hf.tree.iagent_count() as u64);
        self.record_tree_shape();

        // Install on the absorbers (via the directory) and on the merged
        // IAgent (whose directory entry is gone — use its last node).
        self.hf.refresh_compiled(&applied.absorbers);
        self.distribute(ctx, &applied.absorbers);
        if let Some(node) = merged_node {
            ctx.send(
                from,
                node,
                Wire::InstallHashFn {
                    hf: self.hf.clone(),
                }
                .payload(),
            );
        }
        self.recent.push((
            self.cooldown_region(region),
            ctx.now() + self.config.rehash_cooldown,
        ));
    }
}

impl Agent for HAgentBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.shared
            .record_version(ctx.self_id().raw(), CopyRole::Primary, self.hf.version);
        ctx.set_timer(self.config.check_interval);
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        // The primary copy survives a crash (the paper treats it as
        // recoverable state — the standby covers the downtime), but every
        // lease that was mid-flight is abandoned (the orphan IAgents retire
        // themselves) and the periodic tick must be re-armed.
        let abandoned = std::mem::take(&mut self.leases).len() as u64;
        if abandoned > 0 {
            self.shared.update(|s| s.rehash_denied += abandoned);
        }
        self.reinstall.clear();
        if lost_soft_state {
            // Epoch counters are soft; losing them only makes recoveries
            // reject their replicas (see the field's fence note).
            self.epochs.clear();
        }
        ctx.set_timer(self.config.check_interval);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        // Re-send installs that bounced (receiver was mid-migration): a
        // tracker must not keep serving under a superseded hash function.
        let retry = std::mem::take(&mut self.reinstall);
        for agent in retry {
            // The directory has the receiver's current node — unless the
            // receiver was merged away, in which case it got what it needed
            // from the bounce-triggering version and retired already (its
            // own install-or-timeout handles it).
            if let Some(node) = self.node_of_iagent(agent) {
                ctx.send(
                    agent,
                    node,
                    Wire::InstallHashFn {
                        hf: self.hf.clone(),
                    }
                    .payload(),
                );
            }
        }
        // Abort leases whose new IAgent never reported (lost message /
        // injected failure): the orphans retire themselves, the requesters'
        // pending flags time out on their own (against the same
        // `rehash_lease_timeout`, so a requester never re-asks while its
        // lease is still live here).
        let now = ctx.now();
        let timeout = self.config.rehash_lease_timeout();
        let before = self.leases.len();
        self.leases
            .retain(|lease| now.saturating_since(lease.started_at) <= timeout);
        let aborted = (before - self.leases.len()) as u64;
        if aborted > 0 {
            self.shared.update(|s| s.rehash_denied += aborted);
        }
        // Expired cooldowns can go; `blocked` also checks `until`, this
        // just keeps the list from growing.
        self.recent.retain(|&(_, until)| now < until);
        ctx.set_timer(self.config.check_interval);
    }

    fn on_delivery_failed(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        to: AgentId,
        _node: NodeId,
        payload: &Payload,
    ) {
        // A lost install leaves a tracker serving under a stale view; queue
        // a retry (the periodic tick re-sends to the directory's current
        // node, which the move that caused the bounce will have updated).
        if matches!(
            Wire::from_payload(payload),
            Some(Wire::InstallHashFn { .. })
        ) && !self.reinstall.contains(&to)
        {
            self.reinstall.push(to);
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let Some(msg) = Wire::from_payload(payload) else {
            return;
        };
        match msg {
            Wire::SplitRequest { loads, .. } => self.handle_split_request(ctx, from, loads),
            Wire::IAgentReady { lease } => self.handle_ready(ctx, from, lease),
            Wire::MergeRequest { .. } => self.handle_merge_request(ctx, from),
            Wire::IAgentMoved { node } => {
                let ia = IAgentId::new(from.raw());
                if let std::collections::hash_map::Entry::Occupied(mut e) =
                    self.hf.locations.entry(ia)
                {
                    e.insert(node);
                    self.hf.version += 1;
                    // Empty involved set: nothing to install, but eager
                    // copies and the standby must still learn the version.
                    self.distribute(ctx, &[]);
                }
            }
            Wire::FetchHashFn { reply_node, .. } => {
                self.shared.update(|s| s.hf_fetches += 1);
                ctx.send(
                    from,
                    reply_node,
                    Wire::HashFnCopy {
                        hf: self.hf.clone(),
                    }
                    .payload(),
                );
            }
            Wire::EpochRequest => {
                // A restarted tracker wants a fresh epoch before it may
                // use replicated records. Every request bumps — a retry
                // after a lost grant just fences one epoch further.
                let e = self.epochs.entry(from.raw()).or_insert(0);
                *e += 1;
                let epoch = *e;
                let buddy = self.hf.buddy_of(from).or(self.standby);
                if let Some(node) = self.node_of_iagent(from) {
                    ctx.send(from, node, Wire::EpochGrant { epoch, buddy }.payload());
                }
            }
            _ => {}
        }
    }
}
