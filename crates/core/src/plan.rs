//! Split planning: choosing where an overloaded IAgent's load divides.
//!
//! The paper's procedure (§4.1), executed by the HAgent with the
//! requester's per-agent load statistics in hand:
//!
//! 1. If the requester's hyper-label has a multi-bit label, try **complex
//!    splits**: the left-most multi-bit label first, its first unused bit
//!    first. Accept the first bit that divides the load evenly.
//! 2. Otherwise (or if no complex split is even), try **simple splits**
//!    with `m = 1, 2, …`: branch on the `m`-th extra bit, until one divides
//!    the load evenly.
//! 3. If no candidate is even, settle for the most even one — unless every
//!    candidate leaves all load on one side (a single red-hot agent), in
//!    which case splitting cannot help and the plan fails.

use agentrack_hashtree::{HashTree, IAgentId, Side, SplitCandidate, SplitKind, TreeError};
use agentrack_platform::AgentId;

use crate::config::LocationConfig;
use crate::wire::key_of;

/// A chosen split: the tree candidate plus which side the new IAgent takes.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// The tree operation to apply.
    pub candidate: SplitCandidate,
    /// Side assigned to the new IAgent (agents whose key bit equals this
    /// side's valid bit move to it).
    pub new_side: Side,
    /// Fraction of the load on the lighter side (0.5 = perfectly even).
    pub balance: f64,
    /// `true` if the plan satisfied the evenness tolerance.
    pub even: bool,
}

/// Why no split plan could be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The IAgent owns no leaf of the tree (already merged away).
    UnknownIAgent,
    /// The tree cannot split further for this IAgent (key bits exhausted).
    NoCandidates,
    /// Every candidate leaves the entire load on one side: one agent
    /// receives essentially all requests, and no hash split can relieve
    /// that.
    Unbalanceable,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownIAgent => write!(f, "IAgent owns no leaf"),
            PlanError::NoCandidates => write!(f, "no split candidates remain"),
            PlanError::Unbalanceable => {
                write!(
                    f,
                    "load is concentrated on a single agent; no split can balance it"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a split of `iagent`'s load, following the paper's candidate order.
///
/// `loads` are the requester's accumulated per-agent request counts; agents
/// with zero recorded load still matter for the partition (they weigh 1, so
/// a population split stays meaningful when traffic is sparse).
///
/// # Errors
///
/// See [`PlanError`].
pub fn plan_split(
    tree: &HashTree,
    iagent: IAgentId,
    loads: &[(AgentId, u64)],
    config: &LocationConfig,
) -> Result<SplitPlan, PlanError> {
    let candidates = match tree.split_candidates(iagent) {
        Ok(c) => c,
        Err(TreeError::UnknownIAgent(_)) => return Err(PlanError::UnknownIAgent),
        Err(_) => return Err(PlanError::NoCandidates),
    };

    // Ablation E10: skip the statistics entirely and take the first simple
    // candidate (m = 1) — what a naive extendible-hash split would do.
    if config.blind_splits {
        return candidates
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
            .map(|candidate| SplitPlan {
                candidate,
                new_side: Side::Right,
                balance: 0.0,
                even: false,
            })
            .ok_or(PlanError::NoCandidates);
    }

    let weighted: Vec<(u64, u64)> = loads
        .iter()
        .map(|&(agent, w)| (key_of(agent).raw(), w.max(1)))
        .collect();

    let mut best: Option<SplitPlan> = None;
    for candidate in candidates {
        if !config.complex_splits_enabled && matches!(candidate.kind, SplitKind::Complex { .. }) {
            continue;
        }
        if let SplitKind::Simple { m } = candidate.kind {
            if m > config.max_simple_m {
                break; // candidates are ordered; all later m are larger
            }
        }
        let (w0, w1) = partition(&weighted, candidate.key_bit);
        let total = w0 + w1;
        if total == 0 {
            continue;
        }
        let balance = w0.min(w1) as f64 / total as f64;
        let new_side = if w1 <= w0 { Side::Right } else { Side::Left };
        let even = balance >= 0.5 - config.split_tolerance;
        let plan = SplitPlan {
            candidate,
            new_side,
            balance,
            even,
        };
        if even {
            return Ok(plan);
        }
        if best.as_ref().is_none_or(|b| plan.balance > b.balance) {
            best = Some(plan);
        }
    }
    match best {
        Some(plan) if plan.balance > 0.0 => Ok(plan),
        Some(_) => Err(PlanError::Unbalanceable),
        None => Err(PlanError::NoCandidates),
    }
}

/// Sums weights by the value of `key_bit` (0-side, 1-side).
fn partition(weighted: &[(u64, u64)], key_bit: usize) -> (u64, u64) {
    let mut w0 = 0u64;
    let mut w1 = 0u64;
    for &(key, w) in weighted {
        if (key >> (63 - key_bit)) & 1 == 1 {
            w1 += w;
        } else {
            w0 += w;
        }
    }
    (w0, w1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentrack_hashtree::AgentKey;

    /// Finds agent ids whose hashed keys start with the given first bit,
    /// so tests can construct loads with known partitions.
    fn agent_with_first_bit(bit: bool, skip: u64) -> AgentId {
        let mut skipped = 0;
        for raw in 0..100_000u64 {
            let key = key_of(AgentId::new(raw));
            if key.bit(0) == bit {
                if skipped == skip {
                    return AgentId::new(raw);
                }
                skipped += 1;
            }
        }
        panic!("no agent with first bit {bit}");
    }

    #[test]
    fn even_population_splits_on_the_first_bit() {
        let tree = HashTree::new(IAgentId::new(0));
        let loads: Vec<(AgentId, u64)> = (0..100).map(|i| (AgentId::new(i), 10)).collect();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &LocationConfig::default())
            .expect("even loads must split");
        assert!(plan.even);
        assert_eq!(plan.candidate.kind, SplitKind::Simple { m: 1 });
        assert_eq!(plan.candidate.key_bit, 0);
        assert!(plan.balance >= 0.35);
    }

    #[test]
    fn skewed_first_bit_moves_to_a_later_bit() {
        // All load on agents whose keys start with 1: bit 0 is useless and
        // the planner must advance to a deeper bit (m > 1).
        let tree = HashTree::new(IAgentId::new(0));
        let loads: Vec<(AgentId, u64)> = (0..64)
            .map(|i| (agent_with_first_bit(true, i), 5))
            .collect();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &LocationConfig::default())
            .expect("must find a deeper even bit");
        assert!(plan.even, "balance {}", plan.balance);
        match plan.candidate.kind {
            SplitKind::Simple { m } => assert!(m > 1, "expected m > 1"),
            SplitKind::Complex { .. } => panic!("fresh tree has no complex candidates"),
        }
    }

    #[test]
    fn single_hot_agent_is_unbalanceable() {
        let tree = HashTree::new(IAgentId::new(0));
        let loads = vec![(AgentId::new(7), 1_000_000)];
        assert_eq!(
            plan_split(&tree, IAgentId::new(0), &loads, &LocationConfig::default()),
            Err(PlanError::Unbalanceable)
        );
    }

    #[test]
    fn zero_load_agents_weigh_one() {
        let tree = HashTree::new(IAgentId::new(0));
        let loads: Vec<(AgentId, u64)> = (0..100).map(|i| (AgentId::new(i), 0)).collect();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &LocationConfig::default()).unwrap();
        assert!(plan.even);
    }

    #[test]
    fn blind_splits_ignore_the_statistics() {
        let tree = HashTree::new(IAgentId::new(0));
        // All load on 1-prefixed keys: the even-split planner would pick a
        // deeper bit, the blind planner must not.
        let loads: Vec<(AgentId, u64)> = (0..32)
            .map(|i| (agent_with_first_bit(true, i), 9))
            .collect();
        let config = LocationConfig::default().with_blind_splits();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &config).unwrap();
        assert_eq!(plan.candidate.kind, SplitKind::Simple { m: 1 });
        assert_eq!(plan.candidate.key_bit, 0);
        assert!(!plan.even);
    }

    #[test]
    fn unknown_iagent_is_reported() {
        let tree = HashTree::new(IAgentId::new(0));
        assert_eq!(
            plan_split(&tree, IAgentId::new(9), &[], &LocationConfig::default()),
            Err(PlanError::UnknownIAgent)
        );
    }

    #[test]
    fn complex_candidates_win_when_enabled_and_even() {
        // Build a tree whose IAgent 0 leaf carries a multi-bit label by
        // splitting (m=2) and merging the sibling back.
        let mut tree = HashTree::new(IAgentId::new(0));
        let cand = tree
            .split_candidates(IAgentId::new(0))
            .unwrap()
            .into_iter()
            .find(|c| c.kind == SplitKind::Simple { m: 2 })
            .unwrap();
        tree.apply_split(&cand, IAgentId::new(1), Side::Right)
            .unwrap();
        tree.apply_merge(IAgentId::new(1)).unwrap();
        assert!(tree
            .hyper_label(IAgentId::new(0))
            .unwrap()
            .has_unused_bits());

        let loads: Vec<(AgentId, u64)> = (0..200).map(|i| (AgentId::new(i), 1)).collect();
        let config = LocationConfig::default();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &config).unwrap();
        assert!(
            matches!(plan.candidate.kind, SplitKind::Complex { .. }),
            "complex candidates come first: {plan:?}"
        );

        // With the ablation flag the planner falls back to simple splits.
        let simple_only = LocationConfig::default().simple_splits_only();
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &simple_only).unwrap();
        assert!(matches!(plan.candidate.kind, SplitKind::Simple { .. }));
    }

    #[test]
    fn new_side_takes_the_lighter_half() {
        let tree = HashTree::new(IAgentId::new(0));
        // 3 units on the 0-side, 1 unit on the 1-side of bit 0.
        let mut loads = vec![(agent_with_first_bit(true, 0), 1)];
        for i in 0..3 {
            loads.push((agent_with_first_bit(false, i), 1));
        }
        let config = LocationConfig {
            split_tolerance: 0.3, // accept the 25/75 split
            ..LocationConfig::default()
        };
        let plan = plan_split(&tree, IAgentId::new(0), &loads, &config).unwrap();
        assert_eq!(plan.candidate.key_bit, 0);
        assert_eq!(plan.new_side, Side::Right, "lighter side is the 1-side");
        let key = key_of(loads[0].0);
        assert!(AgentKey::from(key.raw()).bit(0));
    }
}
