//! Configuration of the location mechanism.

use agentrack_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunables of the hash-based location mechanism.
///
/// The two headline knobs are the paper's thresholds: an IAgent whose
/// observed message rate exceeds [`t_max`](LocationConfig::t_max) requests a
/// split, one whose rate falls below [`t_min`](LocationConfig::t_min)
/// requests a merge. The experiments use 50 and 5 messages per second
/// ("the `T_max` and `T_min` values were set at 50 and 5 messages per
/// second").
///
/// # Examples
///
/// ```
/// use agentrack_core::LocationConfig;
///
/// let config = LocationConfig::default().with_thresholds(100.0, 10.0);
/// assert_eq!(config.t_max, 100.0);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationConfig {
    /// Split threshold: requests/second above which an IAgent asks the
    /// HAgent to split its load.
    pub t_max: f64,
    /// Merge threshold: requests/second below which an IAgent asks the
    /// HAgent to merge it away.
    pub t_min: f64,
    /// Span of the sliding window over which request rates are estimated.
    pub rate_window: SimDuration,
    /// Number of buckets in the rate window (memory/stability trade-off).
    pub rate_buckets: usize,
    /// Evenness tolerance for split planning: a partition is *even* when
    /// the lighter side carries at least `0.5 - split_tolerance` of the
    /// load.
    pub split_tolerance: f64,
    /// Upper bound on the `m` tried by simple splits before settling for
    /// the best uneven candidate.
    pub max_simple_m: usize,
    /// Minimum IAgent age before it may request a merge (a newborn IAgent
    /// has an empty rate window and would otherwise merge immediately).
    pub merge_warmup: SimDuration,
    /// Minimum spacing between rehash operations accepted by the HAgent.
    /// With concurrent rehash the cooldown is scoped per subtree region:
    /// it gates a new operation only against recent operations whose
    /// regions overlap it.
    pub rehash_cooldown: SimDuration,
    /// Maximum number of rehash operations (splits/merges) the HAgent
    /// allows in flight at once. Operations proceed in parallel only when
    /// their subtree regions are prefix-disjoint; overlapping requests are
    /// still serialised. `1` reproduces the paper's single-flight protocol
    /// (the ablation arm of E17).
    pub rehash_concurrency: usize,
    /// How long an IAgent buffers a query for an agent that hashes to it
    /// but whose record has not arrived yet (handoff in flight) before
    /// answering "not found".
    pub pending_timeout: SimDuration,
    /// Interval at which per-agent load counters are halved, so split
    /// planning reflects recent traffic.
    pub decay_interval: SimDuration,
    /// Interval of the periodic self-check that lets an *idle* IAgent
    /// notice it has fallen below `t_min`.
    pub check_interval: SimDuration,
    /// Enables the paper's complex splits (promoting unused label bits);
    /// disabled only by the split-strategy ablation.
    pub complex_splits_enabled: bool,
    /// Ablation: ignore the load statistics and always split blindly on
    /// the first extra bit (`m = 1`), instead of the paper's
    /// statistics-driven search for an even split point.
    pub blind_splits: bool,
    /// Enables merging; disabled by experiments that only grow.
    pub merge_enabled: bool,
    /// When `true` the HAgent eagerly pushes every new hash-function
    /// version to all LHAgents, instead of the paper's lazy on-demand
    /// propagation (ablation E4).
    pub eager_propagation: bool,
    /// Client retry budget for a single locate operation.
    pub max_locate_attempts: u32,
    /// Client timeout before retrying a locate that got no answer.
    pub locate_retry_timeout: SimDuration,
    /// Client delay before retrying after a request *bounced* (the tracker
    /// is mid-migration); an immediate retry would burn the budget inside
    /// the outage window.
    pub bounce_retry_delay: SimDuration,
    /// Locality extension (paper §7, "the IAgents could move closer to the
    /// majority of the agents that they serve"): when enabled, an IAgent
    /// migrates to the node that originates most of its traffic.
    pub locality_migration: bool,
    /// Fraction of recent requests a node must originate before the IAgent
    /// moves there.
    pub locality_threshold: f64,
    /// Minimum recent requests before a locality decision is made.
    pub locality_min_requests: u64,
    /// How long a tracker buffers mediated mail (`DeliverVia`) for an
    /// agent whose location is momentarily unknown before dropping it.
    pub mail_ttl: SimDuration,
    /// When set, hash-function copy holders (LHAgents, IAgents)
    /// periodically re-fetch from their source at this interval, so
    /// stale copies converge even without client traffic — and an
    /// unresponsive source is noticed (LHAgent failover) during idle
    /// periods. `None` (the default) keeps propagation purely lazy, as
    /// in the paper.
    pub version_audit: Option<SimDuration>,
    /// When set, each IAgent replicates its record set (and rate
    /// estimate) to its buddy replica — the sibling leaf under the hash
    /// tree, or the configured standby when the tree has one leaf — at
    /// most once per this interval, and a restarted IAgent recovers its
    /// records from that replica instead of starting empty. `None`
    /// disables replication: records are pure soft state, as in the
    /// paper.
    pub replication_interval: Option<SimDuration>,
    /// How long an unacknowledged `RecordSync` batch waits before it is
    /// re-sent to the buddy.
    pub replication_retry: SimDuration,
    /// How long a recovering IAgent keeps soliciting re-registrations and
    /// answering from stale replica records before it declares recovery
    /// over (converged or not) and resumes normal answering.
    pub recovery_timeout: SimDuration,
    /// How long a hash-function copy holder waits for a `FetchHashFn`
    /// answer before declaring the source unresponsive and failing over.
    pub fetch_timeout: SimDuration,
    /// Base delay of the LHAgent's capped exponential backoff, entered
    /// when *every* hash-function source has bounced a fetch.
    pub fetch_backoff_base: SimDuration,
    /// Cap on the LHAgent's exponential backoff delay.
    pub fetch_backoff_cap: SimDuration,
    /// Consecutive locate timeouts against one destination before a
    /// client marks it degraded and starts hedging freshness-bounded
    /// locates to the tracker's buddy replica.
    pub geo_degrade_after: u32,
    /// Consecutive successful answers from a degraded destination before
    /// the client trusts it again and stops hedging.
    pub geo_heal_after: u32,
}

impl Default for LocationConfig {
    fn default() -> Self {
        LocationConfig {
            t_max: 50.0,
            t_min: 5.0,
            rate_window: SimDuration::from_secs(1),
            rate_buckets: 10,
            split_tolerance: 0.15,
            max_simple_m: 16,
            merge_warmup: SimDuration::from_secs(3),
            rehash_cooldown: SimDuration::from_millis(100),
            rehash_concurrency: 4,
            pending_timeout: SimDuration::from_millis(500),
            decay_interval: SimDuration::from_secs(2),
            check_interval: SimDuration::from_millis(500),
            complex_splits_enabled: true,
            blind_splits: false,
            merge_enabled: true,
            eager_propagation: false,
            max_locate_attempts: 8,
            locate_retry_timeout: SimDuration::from_millis(800),
            bounce_retry_delay: SimDuration::from_millis(50),
            locality_migration: false,
            locality_threshold: 0.6,
            locality_min_requests: 50,
            mail_ttl: SimDuration::from_secs(10),
            version_audit: None,
            replication_interval: None,
            replication_retry: SimDuration::from_millis(300),
            recovery_timeout: SimDuration::from_secs(3),
            fetch_timeout: SimDuration::from_millis(800),
            fetch_backoff_base: SimDuration::from_millis(100),
            fetch_backoff_cap: SimDuration::from_secs(2),
            geo_degrade_after: 2,
            geo_heal_after: 2,
        }
    }
}

impl LocationConfig {
    /// Sets both thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, t_max: f64, t_min: f64) -> Self {
        self.t_max = t_max;
        self.t_min = t_min;
        self
    }

    /// Disables complex splits (ablation E3).
    #[must_use]
    pub fn simple_splits_only(mut self) -> Self {
        self.complex_splits_enabled = false;
        self
    }

    /// Splits blindly on the first extra bit, ignoring load statistics
    /// (ablation E10).
    #[must_use]
    pub fn with_blind_splits(mut self) -> Self {
        self.blind_splits = true;
        self
    }

    /// Enables eager hash-function propagation (ablation E4).
    #[must_use]
    pub fn with_eager_propagation(mut self) -> Self {
        self.eager_propagation = true;
        self
    }

    /// Enables the locality extension: IAgents migrate toward their
    /// traffic (experiment E9).
    #[must_use]
    pub fn with_locality_migration(mut self) -> Self {
        self.locality_migration = true;
        self
    }

    /// Enables periodic hash-function version audits at the given
    /// interval (used by chaos runs so copies converge after faults).
    #[must_use]
    pub fn with_version_audit(mut self, interval: SimDuration) -> Self {
        self.version_audit = Some(interval);
        self
    }

    /// Enables record replication to buddy replicas at the given interval
    /// (and with it, epoch-fenced recovery after a soft-state-losing
    /// restart).
    #[must_use]
    pub fn with_replication(mut self, interval: SimDuration) -> Self {
        self.replication_interval = Some(interval);
        self
    }

    /// Sets the rehash pipeline width: how many prefix-disjoint
    /// splits/merges may be in flight at once. `1` is the paper's
    /// single-flight protocol (E17's ablation arm).
    #[must_use]
    pub fn with_rehash_concurrency(mut self, concurrency: usize) -> Self {
        self.rehash_concurrency = concurrency;
        self
    }

    /// How long the HAgent holds a split lease whose fresh IAgent never
    /// reported ready before abandoning it, and how long an IAgent waits
    /// for *any* answer to a rehash request before clearing its own
    /// pending flag. Derived (not a free knob) so the two sides of the
    /// protocol always agree on when an operation is dead.
    #[must_use]
    pub fn rehash_lease_timeout(&self) -> SimDuration {
        self.rate_window * 5
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_max.is_nan() || self.t_max <= 0.0 {
            return Err("t_max must be positive".into());
        }
        if self.t_min.is_nan() || self.t_min < 0.0 {
            return Err("t_min must be non-negative".into());
        }
        if self.t_min >= self.t_max {
            return Err(format!(
                "t_min ({}) must be below t_max ({}) or splits and merges oscillate",
                self.t_min, self.t_max
            ));
        }
        if self.rate_window.is_zero() || self.rate_buckets == 0 {
            return Err("rate window must be non-empty".into());
        }
        if !(0.0..0.5).contains(&self.split_tolerance) {
            return Err("split_tolerance must be in [0, 0.5)".into());
        }
        if !(0.0..=1.0).contains(&self.locality_threshold) {
            return Err("locality_threshold must be in [0, 1]".into());
        }
        if self.max_simple_m == 0 {
            return Err("max_simple_m must be at least 1".into());
        }
        if self.rehash_concurrency == 0 {
            return Err("rehash_concurrency must be at least 1".into());
        }
        if self.max_locate_attempts == 0 {
            return Err("max_locate_attempts must be at least 1".into());
        }
        if self.replication_interval.is_some_and(|i| i.is_zero()) {
            return Err("replication_interval must be non-zero when set".into());
        }
        if self.replication_retry.is_zero() {
            return Err("replication_retry must be non-zero".into());
        }
        if self.fetch_timeout.is_zero() {
            return Err("fetch_timeout must be non-zero".into());
        }
        if self.fetch_backoff_base.is_zero() || self.fetch_backoff_cap < self.fetch_backoff_base {
            return Err("fetch backoff needs 0 < base <= cap".into());
        }
        if self.geo_degrade_after == 0 || self.geo_heal_after == 0 {
            return Err("geo_degrade_after and geo_heal_after must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = LocationConfig::default();
        assert_eq!(c.t_max, 50.0);
        assert_eq!(c.t_min, 5.0);
        // Records stay pure soft state by default, as in the paper;
        // replication is an opt-in extension.
        assert_eq!(c.replication_interval, None);
        c.validate().unwrap();
    }

    #[test]
    fn replication_builder_and_validation() {
        let c = LocationConfig::default().with_replication(SimDuration::from_millis(250));
        assert_eq!(c.replication_interval, Some(SimDuration::from_millis(250)));
        c.validate().unwrap();
        let bad = LocationConfig {
            replication_interval: Some(SimDuration::ZERO),
            ..LocationConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocationConfig {
            fetch_backoff_cap: SimDuration::from_millis(1),
            ..LocationConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_rejects_inverted_thresholds() {
        let c = LocationConfig::default().with_thresholds(5.0, 50.0);
        assert!(c.validate().unwrap_err().contains("oscillate"));
    }

    #[test]
    fn validation_rejects_bad_tolerance() {
        let c = LocationConfig {
            split_tolerance: 0.6,
            ..LocationConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn ablation_builders() {
        let c = LocationConfig::default().simple_splits_only();
        assert!(!c.complex_splits_enabled);
        let c = LocationConfig::default().with_eager_propagation();
        assert!(c.eager_propagation);
        let c = LocationConfig::default().with_rehash_concurrency(1);
        assert_eq!(c.rehash_concurrency, 1);
        c.validate().unwrap();
    }

    #[test]
    fn rehash_concurrency_must_be_positive() {
        let c = LocationConfig::default().with_rehash_concurrency(0);
        assert!(c.validate().unwrap_err().contains("rehash_concurrency"));
        // The lease timeout is derived from the rate window so both sides
        // of the protocol agree on it.
        let c = LocationConfig::default();
        assert_eq!(c.rehash_lease_timeout(), c.rate_window * 5);
    }
}
