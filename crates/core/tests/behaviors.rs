//! Protocol-level tests of the scheme behaviours (IAgent, HAgent,
//! LHAgent), driven by a scripted "puppet" agent speaking the wire
//! protocol directly.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use agentrack_core::{
    key_of, DenyReason, Freshness, HAgentBehavior, HashFunction, IAgentBehavior, LHAgentBehavior,
    LocationConfig, SharedSchemeStats, Wire,
};
use agentrack_hashtree::IAgentId;
use agentrack_platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack_sim::{DurationDist, SimDuration, Topology};

type Inbox = Arc<Mutex<Vec<(AgentId, Wire)>>>;
type Outbox = Arc<Mutex<VecDeque<(AgentId, NodeId, Wire)>>>;

/// Sends whatever the test queues in its outbox; records every protocol
/// message it receives.
struct Puppet {
    inbox: Inbox,
    outbox: Outbox,
}

impl Agent for Puppet {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(5));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        while let Some((to, node, msg)) = self.outbox.lock().unwrap().pop_front() {
            ctx.send(to, node, msg.payload());
        }
        ctx.set_timer(SimDuration::from_millis(5));
    }

    fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if let Some(msg) = Wire::from_payload(payload) {
            self.inbox.lock().unwrap().push((from, msg));
        }
    }
}

struct Harness {
    platform: SimPlatform,
    puppet: AgentId,
    puppet_node: NodeId,
    inbox: Inbox,
    outbox: Outbox,
}

impl Harness {
    fn new(nodes: u32) -> Self {
        let topo = Topology::lan(nodes, DurationDist::Constant(SimDuration::from_micros(200)));
        let mut platform = SimPlatform::new(topo, PlatformConfig::default().with_seed(17));
        let inbox: Inbox = Arc::default();
        let outbox: Outbox = Arc::default();
        let puppet_node = NodeId::new(0);
        let puppet = platform.spawn(
            Box::new(Puppet {
                inbox: inbox.clone(),
                outbox: outbox.clone(),
            }),
            puppet_node,
        );
        Harness {
            platform,
            puppet,
            puppet_node,
            inbox,
            outbox,
        }
    }

    fn send(&self, to: AgentId, node: NodeId, msg: Wire) {
        self.outbox.lock().unwrap().push_back((to, node, msg));
    }

    fn run_ms(&mut self, ms: u64) {
        self.platform.run_for(SimDuration::from_millis(ms));
    }

    fn received(&self) -> Vec<Wire> {
        self.inbox
            .lock()
            .unwrap()
            .iter()
            .map(|(_, m)| m.clone())
            .collect()
    }

    fn clear(&self) {
        self.inbox.lock().unwrap().clear();
    }
}

fn config() -> LocationConfig {
    LocationConfig {
        merge_warmup: SimDuration::from_secs(1),
        ..LocationConfig::default()
    }
}

// ---------------------------------------------------------------------
// LHAgent
// ---------------------------------------------------------------------

#[test]
fn lhagent_resolves_from_its_local_copy() {
    let mut h = Harness::new(2);
    // A hash function whose single IAgent is a dummy id on node 1.
    let iagent = AgentId::new(77);
    let hf = HashFunction::initial(iagent, NodeId::new(1));
    let hagent = AgentId::new(88); // never contacted in this test
    let lh = h.platform.spawn(
        Box::new(LHAgentBehavior::new(
            hf,
            hagent,
            NodeId::new(1),
            SharedSchemeStats::new(),
        )),
        NodeId::new(0),
    );

    h.send(
        lh,
        NodeId::new(0),
        Wire::Resolve {
            target: AgentId::new(5),
            token: Some(9),
            corr: None,
        },
    );
    h.run_ms(50);
    let got = h.received();
    assert_eq!(got.len(), 1);
    match &got[0] {
        Wire::Resolved {
            target,
            iagent: ia,
            node,
            version,
            token,
            ..
        } => {
            assert_eq!(*target, AgentId::new(5));
            assert_eq!(*ia, iagent);
            assert_eq!(*node, NodeId::new(1));
            assert_eq!(*version, 1);
            assert_eq!(*token, Some(9));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn lhagent_resolve_fresh_pulls_the_primary_copy() {
    let mut h = Harness::new(2);
    // The puppet plays the HAgent: it will answer FetchHashFn with a newer
    // version pointing at a different IAgent.
    let stale_iagent = AgentId::new(70);
    let fresh_iagent = AgentId::new(71);
    let stale = HashFunction::initial(stale_iagent, NodeId::new(1));
    let mut fresh = HashFunction::initial(fresh_iagent, NodeId::new(0));
    fresh.version = 5;

    let lh = h.platform.spawn(
        Box::new(LHAgentBehavior::new(
            stale,
            h.puppet,
            h.puppet_node,
            SharedSchemeStats::new(),
        )),
        NodeId::new(0),
    );

    h.send(
        lh,
        NodeId::new(0),
        Wire::ResolveFresh {
            target: AgentId::new(5),
            token: Some(1),
            corr: None,
        },
    );
    h.run_ms(30);
    // The LHAgent asked us (the HAgent) for the primary copy.
    let fetch = h
        .received()
        .into_iter()
        .find(|m| matches!(m, Wire::FetchHashFn { .. }));
    assert!(matches!(
        fetch,
        Some(Wire::FetchHashFn {
            have_version: 1,
            ..
        })
    ));
    h.clear();

    // Answer it; the pending resolve must now complete with the new copy.
    h.send(lh, NodeId::new(0), Wire::HashFnCopy { hf: fresh });
    h.run_ms(30);
    let got = h.received();
    assert_eq!(got.len(), 1);
    match &got[0] {
        Wire::Resolved {
            iagent, version, ..
        } => {
            assert_eq!(*iagent, fresh_iagent);
            assert_eq!(*version, 5);
        }
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------------------------------
// IAgent
// ---------------------------------------------------------------------

/// Spawns an installed IAgent owning the whole key space.
fn spawn_sole_iagent(h: &mut Harness, config: LocationConfig) -> AgentId {
    let expected = AgentId::new(h.platform.next_agent_id());
    let hf = HashFunction::initial(expected, NodeId::new(1));
    let id = h.platform.spawn(
        Box::new(IAgentBehavior::initial(
            config,
            h.puppet, // the puppet plays the HAgent
            h.puppet_node,
            hf,
            SharedSchemeStats::new(),
        )),
        NodeId::new(1),
    );
    assert_eq!(id, expected);
    id
}

#[test]
fn iagent_register_then_locate_round_trip() {
    let mut h = Harness::new(2);
    let ia = spawn_sole_iagent(&mut h, config());

    let agent = AgentId::new(500);
    h.send(
        ia,
        NodeId::new(1),
        Wire::Register {
            agent,
            node: NodeId::new(0), // == puppet node, so the ack reaches us
        },
    );
    h.run_ms(30);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::RegisterAck { agent: a } if *a == agent)));
    h.clear();

    h.send(
        ia,
        NodeId::new(1),
        Wire::Locate {
            target: agent,
            token: 3,
            reply_node: h.puppet_node,
            corr: None,
            freshness: Freshness::Any,
        },
    );
    h.run_ms(30);
    let got = h.received();
    assert!(
        matches!(
            got.as_slice(),
            [Wire::Located { target, node, token: 3, .. }]
                if *target == agent && *node == NodeId::new(0)
        ),
        "{got:?}"
    );
}

#[test]
fn iagent_update_changes_the_answer() {
    let mut h = Harness::new(3);
    let ia = spawn_sole_iagent(&mut h, config());
    let agent = AgentId::new(500);
    h.send(
        ia,
        NodeId::new(1),
        Wire::Register {
            agent,
            node: NodeId::new(0),
        },
    );
    h.send(
        ia,
        NodeId::new(1),
        Wire::Update {
            agent,
            node: NodeId::new(2),
        },
    );
    h.send(
        ia,
        NodeId::new(1),
        Wire::Locate {
            target: agent,
            token: 1,
            reply_node: h.puppet_node,
            corr: None,
            freshness: Freshness::Any,
        },
    );
    h.run_ms(50);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::Located { node, .. } if *node == NodeId::new(2))));
}

#[test]
fn iagent_answers_not_responsible_when_the_key_is_elsewhere() {
    let mut h = Harness::new(2);
    // Give the IAgent a hash function in which it owns only half the space:
    // find an agent id that maps to the *other* IAgent.
    let expected = AgentId::new(h.platform.next_agent_id());
    let mut hf = HashFunction::initial(expected, NodeId::new(1));
    let other = IAgentId::new(9_999);
    let cand = hf
        .tree
        .split_candidates(IAgentId::new(expected.raw()))
        .unwrap()[64 - 64]; // first candidate: complex-free tree ⇒ simple m=1
    hf.tree
        .apply_split(&cand, other, agentrack_hashtree::Side::Right)
        .unwrap();
    hf.locations.insert(other, NodeId::new(0));
    hf.version = 2;

    let not_mine = (0..1000u64)
        .map(AgentId::new)
        .find(|a| hf.tree.lookup(key_of(*a)) == other)
        .expect("half the key space maps to the other IAgent");

    let ia = h.platform.spawn(
        Box::new(IAgentBehavior::initial(
            config(),
            h.puppet,
            h.puppet_node,
            hf,
            SharedSchemeStats::new(),
        )),
        NodeId::new(1),
    );
    assert_eq!(ia, expected);

    h.send(
        ia,
        NodeId::new(1),
        Wire::Locate {
            target: not_mine,
            token: 8,
            reply_node: h.puppet_node,
            corr: None,
            freshness: Freshness::Any,
        },
    );
    h.run_ms(30);
    assert!(h.received().iter().any(|m| matches!(
        m,
        Wire::NotResponsible { about, token: Some(8), .. } if *about == not_mine
    )));
}

#[test]
fn iagent_buffers_locates_until_the_handoff_lands() {
    let mut h = Harness::new(2);
    let cfg = LocationConfig {
        pending_timeout: SimDuration::from_millis(400),
        ..config()
    };
    let ia = spawn_sole_iagent(&mut h, cfg);
    let agent = AgentId::new(321);

    // Locate before any record exists: buffered, not answered.
    h.send(
        ia,
        NodeId::new(1),
        Wire::Locate {
            target: agent,
            token: 4,
            reply_node: h.puppet_node,
            corr: None,
            freshness: Freshness::Any,
        },
    );
    h.run_ms(50);
    assert!(h.received().is_empty(), "{:?}", h.received());

    // The handoff arrives; the buffered locate completes.
    h.send(
        ia,
        NodeId::new(1),
        Wire::Handoff {
            records: vec![(agent, NodeId::new(1))],
        },
    );
    h.run_ms(50);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::Located { token: 4, .. })));
}

#[test]
fn iagent_times_out_pending_locates_with_not_found() {
    let mut h = Harness::new(2);
    let cfg = LocationConfig {
        pending_timeout: SimDuration::from_millis(200),
        ..config()
    };
    let ia = spawn_sole_iagent(&mut h, cfg);

    h.send(
        ia,
        NodeId::new(1),
        Wire::Locate {
            target: AgentId::new(31_337),
            token: 6,
            reply_node: h.puppet_node,
            corr: None,
            freshness: Freshness::Any,
        },
    );
    h.run_ms(1000);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::NotFound { token: 6, .. })));
}

#[test]
fn iagent_requests_a_split_when_the_rate_crosses_t_max() {
    let mut h = Harness::new(2);
    let cfg = LocationConfig {
        t_max: 20.0, // low threshold: a short burst crosses it
        ..config()
    };
    let ia = spawn_sole_iagent(&mut h, cfg);

    // ~40 updates over 200 ms ≈ 200 msg/s into the rate window.
    for i in 0..40u64 {
        h.send(
            ia,
            NodeId::new(1),
            Wire::Update {
                agent: AgentId::new(1000 + i),
                node: NodeId::new(0),
            },
        );
    }
    h.run_ms(1500);
    let split = h
        .received()
        .into_iter()
        .find(|m| matches!(m, Wire::SplitRequest { .. }));
    match split {
        Some(Wire::SplitRequest { rate, loads }) => {
            assert!(rate > 20.0, "reported rate {rate}");
            assert!(!loads.is_empty());
        }
        other => panic!("expected a split request, got {other:?}"),
    }
}

#[test]
fn iagent_merged_away_hands_off_everything_and_retires() {
    let mut h = Harness::new(2);
    let ia = spawn_sole_iagent(&mut h, config());
    let agent = AgentId::new(512);
    h.send(
        ia,
        NodeId::new(1),
        Wire::Register {
            agent,
            node: NodeId::new(0),
        },
    );
    h.run_ms(30);
    h.clear();

    // Install a version in which this IAgent's leaf is gone; the puppet's
    // id owns everything now.
    let mut hf = HashFunction::initial(h.puppet, h.puppet_node);
    hf.version = 7;
    h.send(ia, NodeId::new(1), Wire::InstallHashFn { hf });
    h.run_ms(50);

    let got = h.received();
    assert!(
        got.iter().any(|m| matches!(
            m,
            Wire::Handoff { records } if records.contains(&(agent, NodeId::new(0)))
        )),
        "{got:?}"
    );
    // And the IAgent is gone: further messages bounce.
    assert!(!h.platform.is_active(ia));
}

// ---------------------------------------------------------------------
// HAgent
// ---------------------------------------------------------------------

#[test]
fn hagent_serves_the_primary_copy() {
    let mut h = Harness::new(2);
    let hf = HashFunction::initial(AgentId::new(70), NodeId::new(1));
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(
            config(),
            hf,
            Vec::new(),
            2,
            stats.clone(),
        )),
        NodeId::new(1),
    );

    h.send(
        hagent,
        NodeId::new(1),
        Wire::FetchHashFn {
            have_version: 0,
            reply_node: h.puppet_node,
        },
    );
    h.run_ms(30);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::HashFnCopy { hf } if hf.version == 1)));
    assert_eq!(stats.snapshot().hf_fetches, 1);
}

#[test]
fn hagent_denies_merging_the_last_iagent() {
    let mut h = Harness::new(2);
    // The puppet pretends to be the sole IAgent requesting its own merge.
    let hf = HashFunction::initial(h.puppet, h.puppet_node);
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(
            config(),
            hf,
            Vec::new(),
            2,
            stats.clone(),
        )),
        NodeId::new(1),
    );

    h.send(hagent, NodeId::new(1), Wire::MergeRequest { rate: 0.0 });
    h.run_ms(30);
    assert!(h.received().iter().any(|m| matches!(
        m,
        Wire::RehashDenied {
            reason: DenyReason::NoPlan
        }
    )));
    assert_eq!(stats.snapshot().merges, 0);
}

#[test]
fn hagent_split_flow_creates_and_installs_a_new_iagent() {
    let mut h = Harness::new(2);
    // The puppet is the overloaded sole IAgent.
    let hf = HashFunction::initial(h.puppet, h.puppet_node);
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(
            config(),
            hf,
            Vec::new(),
            2,
            stats.clone(),
        )),
        NodeId::new(1),
    );

    let loads: Vec<(AgentId, u64)> = (0..64).map(|i| (AgentId::new(2000 + i), 5)).collect();
    h.send(
        hagent,
        NodeId::new(1),
        Wire::SplitRequest { rate: 99.0, loads },
    );
    // The real new IAgent sends IAgentReady itself; then the HAgent commits
    // and installs the new version on the involved parties — including the
    // puppet, which receives InstallHashFn with two IAgents.
    h.run_ms(500);
    let installs: Vec<Wire> = h
        .received()
        .into_iter()
        .filter(|m| matches!(m, Wire::InstallHashFn { .. }))
        .collect();
    assert_eq!(installs.len(), 1, "the requester is installed once");
    match &installs[0] {
        Wire::InstallHashFn { hf } => {
            assert_eq!(hf.version, 2);
            assert_eq!(hf.tree.iagent_count(), 2);
            hf.validate().unwrap();
        }
        _ => unreachable!(),
    }
    assert_eq!(stats.snapshot().splits, 1);
    assert_eq!(stats.snapshot().trackers, 2);
}

#[test]
fn hagent_denies_concurrent_rehashes() {
    let mut h = Harness::new(2);
    let hf = HashFunction::initial(h.puppet, h.puppet_node);
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(
            config(),
            hf,
            Vec::new(),
            2,
            stats.clone(),
        )),
        NodeId::new(1),
    );

    let loads: Vec<(AgentId, u64)> = (0..64).map(|i| (AgentId::new(2000 + i), 5)).collect();
    // Two split requests back to back from the same leaf: the second
    // overlaps the first one's still-held lease region and is denied Busy
    // (overlapping rehashes stay serialised even at concurrency > 1).
    h.send(
        hagent,
        NodeId::new(1),
        Wire::SplitRequest {
            rate: 99.0,
            loads: loads.clone(),
        },
    );
    h.send(
        hagent,
        NodeId::new(1),
        Wire::SplitRequest { rate: 99.0, loads },
    );
    h.run_ms(500);
    assert!(h.received().iter().any(|m| matches!(
        m,
        Wire::RehashDenied {
            reason: DenyReason::Busy
        }
    )));
    assert_eq!(stats.snapshot().splits, 1);
    assert_eq!(stats.snapshot().rehash_denied, 1);
}

#[test]
fn frozen_hagent_denies_readonly_without_counting_denial_traffic() {
    let mut h = Harness::new(2);
    let hf = HashFunction::initial(h.puppet, h.puppet_node);
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(
            config(),
            hf,
            Vec::new(),
            2,
            stats.clone(),
        )),
        NodeId::new(1),
    );

    // Administrative drain: the audit (or an operator) froze adaptation.
    stats.set_adaptation_frozen(true);
    let loads: Vec<(AgentId, u64)> = (0..64).map(|i| (AgentId::new(2000 + i), 5)).collect();
    h.send(
        hagent,
        NodeId::new(1),
        Wire::SplitRequest {
            rate: 99.0,
            loads: loads.clone(),
        },
    );
    h.send(hagent, NodeId::new(1), Wire::MergeRequest { rate: 0.0 });
    h.run_ms(200);
    let readonly = h
        .received()
        .iter()
        .filter(|m| {
            matches!(
                m,
                Wire::RehashDenied {
                    reason: DenyReason::ReadOnly
                }
            )
        })
        .count();
    assert_eq!(readonly, 2, "both requests bounce ReadOnly while frozen");
    assert_eq!(stats.snapshot().splits, 0);
    // A closed admission gate is not denial traffic.
    assert_eq!(stats.snapshot().rehash_denied, 0);

    // Thawing restores normal admission.
    stats.set_adaptation_frozen(false);
    h.send(
        hagent,
        NodeId::new(1),
        Wire::SplitRequest { rate: 99.0, loads },
    );
    h.run_ms(500);
    assert_eq!(stats.snapshot().splits, 1);
}

// ---------------------------------------------------------------------
// Locality extension (E9)
// ---------------------------------------------------------------------

#[test]
fn iagent_relocates_toward_its_traffic_and_updates_the_directory() {
    let mut h = Harness::new(3);
    let cfg = LocationConfig {
        locality_migration: true,
        locality_min_requests: 20,
        locality_threshold: 0.6,
        ..config()
    };
    let ia = spawn_sole_iagent(&mut h, cfg);
    assert_eq!(h.platform.agent_node(ia), Some(NodeId::new(1)));

    // 30 updates all reporting agents on node 2: 100% of traffic
    // originates there.
    for i in 0..30u64 {
        h.send(
            ia,
            NodeId::new(1),
            Wire::Update {
                agent: AgentId::new(3000 + i),
                node: NodeId::new(2),
            },
        );
    }
    h.run_ms(2000);
    assert_eq!(
        h.platform.agent_node(ia),
        Some(NodeId::new(2)),
        "the IAgent should have moved to node 2"
    );
    // The puppet (playing the HAgent) heard about the move.
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::IAgentMoved { node } if *node == NodeId::new(2))));
}

#[test]
fn hagent_updates_the_directory_when_an_iagent_moves() {
    let mut h = Harness::new(3);
    // The puppet plays the (sole) IAgent that just moved.
    let hf = HashFunction::initial(h.puppet, NodeId::new(1));
    let stats = SharedSchemeStats::new();
    let hagent = h.platform.spawn(
        Box::new(HAgentBehavior::new(config(), hf, Vec::new(), 3, stats)),
        NodeId::new(1),
    );

    h.send(
        hagent,
        NodeId::new(1),
        Wire::IAgentMoved {
            node: NodeId::new(2),
        },
    );
    h.send(
        hagent,
        NodeId::new(1),
        Wire::FetchHashFn {
            have_version: 0,
            reply_node: h.puppet_node,
        },
    );
    h.run_ms(50);
    let copy = h
        .received()
        .into_iter()
        .find_map(|m| match m {
            Wire::HashFnCopy { hf } => Some(hf),
            _ => None,
        })
        .expect("fetch answered");
    assert_eq!(copy.version, 2, "the move bumped the version");
    let (_, node) = copy.resolve(AgentId::new(1));
    assert_eq!(node, NodeId::new(2), "the directory points at the new node");
}

// ---------------------------------------------------------------------
// Guaranteed delivery (mediated mail, §6 future work)
// ---------------------------------------------------------------------

#[test]
fn deliver_via_forwards_when_the_record_exists() {
    let mut h = Harness::new(2);
    let ia = spawn_sole_iagent(&mut h, config());
    let target = AgentId::new(600);
    // The "recipient" is the puppet itself, so the MailDrop lands in our
    // inbox. Register it at the puppet's node.
    h.send(
        ia,
        NodeId::new(1),
        Wire::Register {
            agent: h.puppet,
            node: h.puppet_node,
        },
    );
    let _ = target;
    h.run_ms(30);
    h.clear();

    h.send(
        ia,
        NodeId::new(1),
        Wire::DeliverVia {
            target: h.puppet,
            from: AgentId::new(42),
            data: vec![9, 9, 9],
            ttl: 8,
        },
    );
    h.run_ms(30);
    assert!(h.received().iter().any(|m| matches!(
        m,
        Wire::MailDrop { from, data } if *from == AgentId::new(42) && data == &vec![9, 9, 9]
    )));
}

#[test]
fn deliver_via_buffers_until_the_next_update() {
    let mut h = Harness::new(2);
    let ia = spawn_sole_iagent(&mut h, config());

    // No record yet: the mail must wait, not bounce.
    h.send(
        ia,
        NodeId::new(1),
        Wire::DeliverVia {
            target: h.puppet,
            from: AgentId::new(42),
            data: vec![7],
            ttl: 8,
        },
    );
    h.run_ms(50);
    assert!(
        !h.received()
            .iter()
            .any(|m| matches!(m, Wire::MailDrop { .. })),
        "mail must be buffered while the target is unknown"
    );

    // The target's update releases it.
    h.send(
        ia,
        NodeId::new(1),
        Wire::Update {
            agent: h.puppet,
            node: h.puppet_node,
        },
    );
    h.run_ms(50);
    assert!(h
        .received()
        .iter()
        .any(|m| matches!(m, Wire::MailDrop { data, .. } if data == &vec![7])));
}

#[test]
fn deliver_via_chases_across_a_stale_tracker() {
    let mut h = Harness::new(2);
    // IAgent whose hash function maps the target to the *puppet* (playing
    // a second IAgent): a DeliverVia for that target must be forwarded to
    // us, with the ttl decremented.
    let expected = AgentId::new(h.platform.next_agent_id());
    let mut hf = HashFunction::initial(expected, NodeId::new(1));
    let other = IAgentId::new(h.puppet.raw());
    let cand = hf
        .tree
        .split_candidates(IAgentId::new(expected.raw()))
        .unwrap()[0];
    hf.tree
        .apply_split(&cand, other, agentrack_hashtree::Side::Right)
        .unwrap();
    hf.locations.insert(other, h.puppet_node);
    hf.version = 2;

    let not_mine = (0..1000u64)
        .map(AgentId::new)
        .find(|a| hf.tree.lookup(key_of(*a)) == other)
        .expect("half the key space is the puppet's");

    let ia = h.platform.spawn(
        Box::new(IAgentBehavior::initial(
            config(),
            h.puppet,
            h.puppet_node,
            hf,
            SharedSchemeStats::new(),
        )),
        NodeId::new(1),
    );
    assert_eq!(ia, expected);

    h.send(
        ia,
        NodeId::new(1),
        Wire::DeliverVia {
            target: not_mine,
            from: AgentId::new(42),
            data: vec![5],
            ttl: 8,
        },
    );
    h.run_ms(30);
    assert!(h.received().iter().any(|m| matches!(
        m,
        Wire::DeliverVia { target, ttl: 7, .. } if *target == not_mine
    )));
}
