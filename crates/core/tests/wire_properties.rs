//! Property tests of the wire layer: every message round-trips through
//! payload encoding, and the hash-function artifact stays consistent under
//! random rehash histories.

use agentrack_core::{key_of, plan_split, Freshness, HashFunction, LocationConfig, Wire};
use agentrack_hashtree::{IAgentId, Side, SplitKind};
use agentrack_platform::{AgentId, CorrId, NodeId};
use proptest::prelude::*;

fn arb_agent() -> impl Strategy<Value = AgentId> {
    any::<u64>().prop_map(AgentId::new)
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..64).prop_map(NodeId::new)
}

fn arb_corr() -> impl Strategy<Value = Option<CorrId>> {
    proptest::option::of((any::<u64>(), any::<u64>()).prop_map(|(o, s)| CorrId::new(o, s)))
}

fn arb_freshness() -> impl Strategy<Value = Freshness> {
    prop_oneof![
        Just(Freshness::Fresh),
        any::<u64>().prop_map(Freshness::BoundedMs),
        Just(Freshness::Any),
    ]
}

fn arb_wire() -> impl Strategy<Value = Wire> {
    prop_oneof![
        (arb_agent(), proptest::option::of(any::<u64>()), arb_corr()).prop_map(
            |(target, token, corr)| Wire::Resolve {
                target,
                token,
                corr
            }
        ),
        (arb_agent(), arb_node()).prop_map(|(agent, node)| Wire::Register { agent, node }),
        (arb_agent(), arb_node()).prop_map(|(agent, node)| Wire::Update { agent, node }),
        (arb_agent(), 0u32..16).prop_map(|(agent, ttl)| Wire::Deregister { agent, ttl }),
        (
            arb_agent(),
            any::<u64>(),
            arb_node(),
            arb_freshness(),
            arb_corr()
        )
            .prop_map(|(target, token, reply_node, freshness, corr)| {
                Wire::Locate {
                    target,
                    token,
                    reply_node,
                    freshness,
                    corr,
                }
            }),
        (
            arb_agent(),
            arb_node(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            arb_corr()
        )
            .prop_map(|(target, node, stale, age_ms, token, corr)| Wire::Located {
                target,
                node,
                stale,
                age_ms,
                token,
                corr
            }),
        (arb_agent(), proptest::option::of(any::<u64>()), arb_corr())
            .prop_map(|(about, token, corr)| Wire::NotResponsible { about, token, corr }),
        // Rates are msgs/sec: non-negative, human-scale. (Extreme doubles
        // lose bits through JSON, which the protocol never carries.)
        (
            0.0f64..1e9,
            prop::collection::vec((arb_agent(), any::<u64>()), 0..20)
        )
            .prop_map(|(rate, loads)| Wire::SplitRequest { rate, loads }),
        prop::collection::vec((arb_agent(), arb_node()), 0..20)
            .prop_map(|records| Wire::Handoff { records }),
        (any::<u64>(), arb_node()).prop_map(|(have_version, reply_node)| Wire::FetchHashFn {
            have_version,
            reply_node
        }),
        arb_node().prop_map(|node| Wire::IAgentMoved { node }),
        (
            arb_agent(),
            any::<u64>(),
            arb_agent(),
            arb_node(),
            0u32..64,
            arb_corr()
        )
            .prop_map(|(target, token, reply_to, reply_node, hops, corr)| {
                Wire::ChainLocate {
                    target,
                    token,
                    reply_to,
                    reply_node,
                    hops,
                    corr,
                }
            }),
    ]
}

proptest! {
    /// Every protocol message survives encode/decode exactly.
    #[test]
    fn wire_round_trips(msg in arb_wire()) {
        let payload = msg.payload();
        prop_assert_eq!(Wire::from_payload(&payload), Some(msg));
    }

    /// Arbitrary non-protocol strings never decode as protocol messages
    /// with a confusable meaning (decode either fails or the input happened
    /// to be valid JSON for the enum, which plain prose never is).
    #[test]
    fn prose_is_not_protocol(text in "[a-zA-Z0-9 .,!?]{0,80}") {
        let payload = agentrack_platform::Payload::encode(&text);
        prop_assert_eq!(Wire::from_payload(&payload), None);
    }

    /// Freshness bounds are monotone: any record age admitted under
    /// `BoundedMs(a)` is admitted under every looser bound `b >= a`, and
    /// under `Any`. Loosening a query's freshness requirement can never
    /// lose an answer.
    #[test]
    fn freshness_bounds_are_monotone(a in any::<u64>(), extra in any::<u64>(), age in any::<u64>()) {
        let b = a.saturating_add(extra);
        if Freshness::BoundedMs(a).admits(age) {
            prop_assert!(Freshness::BoundedMs(b).admits(age));
            prop_assert!(Freshness::Any.admits(age));
        }
        // Fresh is the tightest mode: whatever it admits, every bound does.
        if Freshness::Fresh.admits(age) {
            prop_assert!(Freshness::BoundedMs(a).admits(age));
        }
    }

    /// `Fresh` answers report zero staleness: the only record age the
    /// `Fresh` mode ever admits is 0, so an answer produced under it
    /// cannot carry a non-zero `age_ms`.
    #[test]
    fn fresh_admits_only_zero_staleness(age in any::<u64>()) {
        prop_assert_eq!(Freshness::Fresh.admits(age), age == 0);
        prop_assert_eq!(Freshness::Fresh.bound_ms(), Some(0));
        // The bound accessor agrees with admits for every mode.
        for mode in [Freshness::Fresh, Freshness::BoundedMs(age), Freshness::Any] {
            match mode.bound_ms() {
                Some(bound) => prop_assert_eq!(mode.admits(age), age <= bound),
                None => prop_assert!(mode.admits(age)),
            }
        }
    }

    /// A hash function built by random splits stays internally consistent,
    /// resolves every agent, and its planner never panics.
    #[test]
    fn hash_function_consistency_under_random_growth(
        seeds in prop::collection::vec(any::<u64>(), 0..24),
        probe in any::<u64>(),
    ) {
        let mut hf = HashFunction::initial(AgentId::new(0), NodeId::new(0));
        let mut next = 1u64;
        for seed in seeds {
            let target = hf.tree.lookup(key_of(AgentId::new(seed)));
            let Ok(cands) = hf.tree.split_candidates(target) else { continue };
            let Some(cand) = cands
                .into_iter()
                .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
            else {
                continue;
            };
            let new = IAgentId::new(1000 + next);
            if hf.tree.apply_split(&cand, new, Side::Right).is_ok() {
                hf.locations.insert(new, NodeId::new((next % 16) as u32));
                hf.version += 1;
                next += 1;
            }
        }
        hf.validate().unwrap();
        // Total resolution: any agent id resolves to a directory entry.
        let (ia, _node) = hf.resolve(AgentId::new(probe));
        prop_assert!(hf.is_responsible(ia, AgentId::new(probe)));

        // The planner succeeds or fails gracefully on any leaf with any
        // weights.
        let leaf = hf.tree.lookup(key_of(AgentId::new(probe)));
        let loads: Vec<(AgentId, u64)> =
            (0..32).map(|i| (AgentId::new(probe ^ i), i % 5)).collect();
        let _ = plan_split(&hf.tree, leaf, &loads, &LocationConfig::default());
    }
}
