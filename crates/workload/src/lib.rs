//! # agentrack-workload
//!
//! Workload generation and the experiment driver for the location
//! mechanism's evaluation.
//!
//! * [`TAgentBehavior`] — the tracked mobile agents of the paper's
//!   experiments: register, roam with a configurable residence-time
//!   distribution and mobility model, report every move.
//! * [`QuerierBehavior`] — issues locate operations against the TAgent
//!   population and records location times.
//! * [`Scenario`] — a complete experiment description with the
//!   reconstructed paper defaults; [`Scenario::run_with`] executes it
//!   against any [`agentrack_core::LocationScheme`] (with optional
//!   tracing and invariant auditing chosen by [`RunOptions`]) and
//!   produces a [`ScenarioReport`].
//!
//! ## Example
//!
//! ```
//! use agentrack_core::{HashedScheme, LocationConfig};
//! use agentrack_workload::{RunOptions, Scenario};
//!
//! let scenario = Scenario::new("quick")
//!     .with_agents(30)
//!     .with_queries(40)
//!     .with_seconds(8.0, 4.0);
//! let mut scheme = HashedScheme::new(LocationConfig::default());
//! let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
//! assert!(report.completion_ratio() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod invariants;
mod metrics;
mod population;
mod querier;
mod scenario;
mod tagent;

pub use invariants::InvariantReport;
pub use metrics::{Metrics, MetricsInner};
pub use population::Population;
pub use querier::{QuerierBehavior, TargetSelector, Targets};
pub use scenario::{AuditOptions, QuerySpike, RunOptions, RunOutput, Scenario, ScenarioReport};
pub use tagent::{Lifecycle, NodeSelector, TAgentBehavior};
