//! # agentrack-workload
//!
//! Workload generation and the experiment driver for the location
//! mechanism's evaluation.
//!
//! * [`TAgentBehavior`] — the tracked mobile agents of the paper's
//!   experiments: register, roam with a configurable residence-time
//!   distribution and mobility model, report every move.
//! * [`QuerierBehavior`] — issues locate operations against the TAgent
//!   population and records location times.
//! * [`Scenario`] — a complete experiment description with the
//!   reconstructed paper defaults; [`Scenario::run`] executes it against
//!   any [`agentrack_core::LocationScheme`] and produces a
//!   [`ScenarioReport`].
//!
//! ## Example
//!
//! ```
//! use agentrack_core::{HashedScheme, LocationConfig};
//! use agentrack_workload::Scenario;
//!
//! let scenario = Scenario::new("quick")
//!     .with_agents(30)
//!     .with_queries(40)
//!     .with_seconds(8.0, 4.0);
//! let mut scheme = HashedScheme::new(LocationConfig::default());
//! let report = scenario.run(&mut scheme);
//! assert!(report.completion_ratio() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod invariants;
mod metrics;
mod population;
mod querier;
mod scenario;
mod tagent;

pub use invariants::InvariantReport;
pub use metrics::{Metrics, MetricsInner};
pub use population::Population;
pub use querier::{QuerierBehavior, TargetSelector, Targets};
pub use scenario::{QuerySpike, Scenario, ScenarioReport};
pub use tagent::{Lifecycle, NodeSelector, TAgentBehavior};
