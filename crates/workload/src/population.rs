//! The live population: which TAgents currently exist.
//!
//! Mobile-agent systems are "highly-dynamic open systems in which the
//! number of agents varies considerably over time as new agents are
//! created and existing agents die" (paper §1). Under churn, queriers must
//! target agents that are actually alive; this shared roster is how they
//! know.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use agentrack_platform::AgentId;
use agentrack_sim::{SimRng, Zipf};

/// Shared roster of live agents. Cheap to clone; all clones see the same
/// roster.
#[derive(Debug, Clone, Default)]
pub struct Population {
    roster: Arc<Mutex<Vec<AgentId>>>,
    frozen: Arc<AtomicBool>,
}

impl Population {
    /// Creates an empty roster.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an agent (idempotent).
    pub fn add(&self, agent: AgentId) {
        let mut v = self.roster.lock().unwrap();
        if !v.contains(&agent) {
            v.push(agent);
        }
    }

    /// Removes an agent.
    pub fn remove(&self, agent: AgentId) {
        self.roster.lock().unwrap().retain(|a| *a != agent);
    }

    /// Number of live agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roster.lock().unwrap().len()
    }

    /// `true` when nobody is alive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roster.lock().unwrap().is_empty()
    }

    /// Stops churn: lifecycle death timers become no-ops, pinning the
    /// roster. The post-quiesce invariant audit freezes the population
    /// (alongside the scheme's adaptation) so its locate probes race
    /// neither deaths nor births.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Relaxed);
    }

    /// Whether churn is frozen.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }

    /// Picks a uniformly random live agent.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> Option<AgentId> {
        let v = self.roster.lock().unwrap();
        if v.is_empty() {
            None
        } else {
            Some(v[rng.index(v.len())])
        }
    }

    /// Picks a Zipf-ranked live agent: rank 0 is the oldest survivor.
    ///
    /// Roster order is stable between membership events (`remove` keeps
    /// relative order, successors append), so low Zipf ranks keep landing
    /// on the same long-lived agents — hot keys that persist while the
    /// population around them churns. Ranks past the roster clamp to the
    /// youngest agent.
    #[must_use]
    pub fn sample_zipf(&self, rng: &mut SimRng, zipf: &Zipf) -> Option<AgentId> {
        let v = self.roster.lock().unwrap();
        if v.is_empty() {
            None
        } else {
            Some(v[zipf.sample(rng).min(v.len() - 1)])
        }
    }

    /// The current roster, in rank order (oldest survivor first).
    #[must_use]
    pub fn snapshot(&self) -> Vec<AgentId> {
        self.roster.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_sample() {
        let p = Population::new();
        assert!(p.is_empty());
        assert_eq!(p.sample(&mut SimRng::seed_from(1)), None);
        p.add(AgentId::new(1));
        p.add(AgentId::new(2));
        p.add(AgentId::new(1)); // idempotent
        assert_eq!(p.len(), 2);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10 {
            let s = p.sample(&mut rng).unwrap();
            assert!(s == AgentId::new(1) || s == AgentId::new(2));
        }
        p.remove(AgentId::new(1));
        assert_eq!(p.sample(&mut rng), Some(AgentId::new(2)));
        let clone = p.clone();
        clone.remove(AgentId::new(2));
        assert!(p.is_empty());
    }
}
