//! Shared experiment metrics, recorded by workload agents.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use agentrack_platform::AgentId;
use agentrack_sim::{Histogram, SimDuration, SimRng, SimTime};

/// Most per-locate samples retained. Long chaos runs complete millions
/// of locates; the sample vector is a bounded reservoir, not a log.
pub const SAMPLE_RESERVOIR_CAP: usize = 4096;

/// Everything an experiment measures, accumulated during a run.
#[derive(Debug)]
pub struct MetricsInner {
    /// Locates issued before the measurement window (warmup ramp); they
    /// exercise the system but are not part of the reported statistics.
    pub warmup_locates: u64,
    /// Location times of completed locate operations (issue → answer), the
    /// paper's headline metric.
    pub locate_times: Histogram,
    /// Locates issued.
    pub locates_issued: u64,
    /// Locates that gave up after exhausting their retry budget.
    pub locate_failures: u64,
    /// Completed locates answered from a replica (`stale: true`) rather
    /// than the authoritative record — the freshness-bounded degraded
    /// path. Always `<=` the number of completed locates.
    pub stale_answers: u64,
    /// Largest declared record age (ms) seen on any completed locate;
    /// geo experiments assert it never exceeds the staleness budget.
    pub max_answer_age_ms: u64,
    /// Registrations completed.
    pub registrations: u64,
    /// TAgent moves performed.
    pub moves: u64,
    /// TAgents born (initial population plus churn successors).
    pub births: u64,
    /// TAgents that died (churn).
    pub deaths: u64,
    /// Per-locate samples: `(issue time, target, elapsed)` — lets analyses
    /// attribute tail latencies to targets or phases of the run. Bounded
    /// at [`SAMPLE_RESERVOIR_CAP`] by deterministic reservoir sampling;
    /// `samples_seen` counts every completed locate that was offered.
    pub locate_samples: Vec<(SimTime, AgentId, SimDuration)>,
    /// Completed locates offered to the sample reservoir (retained or
    /// not). `locate_samples.len() < samples_seen` means the reservoir
    /// overflowed and the retained set is a uniform subsample.
    pub samples_seen: u64,
    /// Replacement-slot randomness for the reservoir. Seeded from a
    /// fixed constant: each scenario owns its own `Metrics`, so the
    /// retained subsample is a pure function of the arrival sequence.
    reservoir_rng: SimRng,
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            warmup_locates: 0,
            locate_times: Histogram::new(),
            locates_issued: 0,
            locate_failures: 0,
            stale_answers: 0,
            max_answer_age_ms: 0,
            registrations: 0,
            moves: 0,
            births: 0,
            deaths: 0,
            locate_samples: Vec::new(),
            samples_seen: 0,
            reservoir_rng: SimRng::seed_from(0x5EED_5A3B_1E5E_0001),
        }
    }
}

/// Shared handle to the run's metrics; workload agents hold clones.
///
/// Locate statistics only count operations issued at or after the
/// measurement start: the query workload ramps up during warmup so the
/// measured window sees a steady state, not the regime change.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
    measure_start: SimTime,
}

impl Metrics {
    /// Creates zeroed metrics measuring from time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed metrics that only count locates issued at or after
    /// `measure_start`.
    #[must_use]
    pub fn starting_at(measure_start: SimTime) -> Self {
        Metrics {
            inner: Arc::default(),
            measure_start,
        }
    }

    fn measured(&self, issued: SimTime) -> bool {
        issued >= self.measure_start
    }

    /// Records a completed locate.
    pub fn record_locate(&self, issued: SimTime, target: AgentId, elapsed: SimDuration) {
        if !self.measured(issued) {
            return;
        }
        let mut inner = self.inner.lock();
        inner.locate_times.record(elapsed);
        inner.samples_seen += 1;
        if inner.locate_samples.len() < SAMPLE_RESERVOIR_CAP {
            inner.locate_samples.push((issued, target, elapsed));
        } else {
            // Algorithm R: replace a random slot with probability
            // cap / seen, keeping the reservoir a uniform sample.
            let seen = inner.samples_seen;
            let j = inner.reservoir_rng.next_u64() % seen;
            if (j as usize) < SAMPLE_RESERVOIR_CAP {
                inner.locate_samples[j as usize] = (issued, target, elapsed);
            }
        }
    }

    /// Records an issued locate.
    pub fn record_issue(&self, at: SimTime) {
        let mut inner = self.inner.lock();
        if self.measured(at) {
            inner.locates_issued += 1;
        } else {
            inner.warmup_locates += 1;
        }
    }

    /// Records a locate that gave up.
    pub fn record_failure(&self, issued: SimTime) {
        if self.measured(issued) {
            self.inner.lock().locate_failures += 1;
        }
    }

    /// Records the staleness of a completed locate's answer: whether it
    /// came from a replica and the record age it declared.
    pub fn record_answer_age(&self, issued: SimTime, stale: bool, age_ms: u64) {
        if !self.measured(issued) {
            return;
        }
        let mut inner = self.inner.lock();
        if stale {
            inner.stale_answers += 1;
        }
        inner.max_answer_age_ms = inner.max_answer_age_ms.max(age_ms);
    }

    /// Records a completed registration.
    pub fn record_registration(&self) {
        self.inner.lock().registrations += 1;
    }

    /// Records one TAgent move.
    pub fn record_move(&self) {
        self.inner.lock().moves += 1;
    }

    /// Records a TAgent birth.
    pub fn record_birth(&self) {
        self.inner.lock().births += 1;
    }

    /// Records a TAgent death.
    pub fn record_death(&self) {
        self.inner.lock().deaths += 1;
    }

    /// Mean location time over the run.
    #[must_use]
    pub fn mean_locate_time(&self) -> SimDuration {
        self.inner.lock().locate_times.mean()
    }

    /// Applies `f` to the full metrics (for report extraction).
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsInner) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Metrics")
            .field("locates", &inner.locate_times.len())
            .field("failures", &inner.locate_failures)
            .field("moves", &inner.moves)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate_through_clones() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.record_issue(SimTime::ZERO);
        m2.record_locate(SimTime::ZERO, AgentId::new(1), SimDuration::from_millis(3));
        m2.record_move();
        m.record_registration();
        m.record_failure(SimTime::ZERO);
        assert_eq!(m.mean_locate_time(), SimDuration::from_millis(3));
        m.with(|inner| {
            assert_eq!(inner.locates_issued, 1);
            assert_eq!(inner.locate_failures, 1);
            assert_eq!(inner.registrations, 1);
            assert_eq!(inner.moves, 1);
            assert_eq!(inner.locate_samples.len(), 1);
        });
    }

    #[test]
    fn sample_reservoir_is_bounded_and_counts_everything() {
        let m = Metrics::new();
        let total = SAMPLE_RESERVOIR_CAP as u64 + 1000;
        for i in 0..total {
            m.record_locate(
                SimTime::from_nanos(i),
                AgentId::new(i),
                SimDuration::from_nanos(i),
            );
        }
        m.with(|inner| {
            assert_eq!(inner.samples_seen, total);
            assert_eq!(inner.locate_samples.len(), SAMPLE_RESERVOIR_CAP);
            assert_eq!(
                inner.locate_times.len() as u64,
                total,
                "histogram keeps all"
            );
            // Replacement happened: not just the first `cap` arrivals.
            assert!(inner
                .locate_samples
                .iter()
                .any(|&(_, _, d)| d.as_nanos() >= SAMPLE_RESERVOIR_CAP as u64));
        });
        // Deterministic: a second identical run retains the same set.
        let m2 = Metrics::new();
        for i in 0..total {
            m2.record_locate(
                SimTime::from_nanos(i),
                AgentId::new(i),
                SimDuration::from_nanos(i),
            );
        }
        let a = m.with(|inner| inner.locate_samples.clone());
        let b = m2.with(|inner| inner.locate_samples.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn warmup_locates_are_excluded_from_statistics() {
        let start = SimTime::ZERO + SimDuration::from_secs(10);
        let m = Metrics::starting_at(start);
        let early = SimTime::ZERO + SimDuration::from_secs(5);
        m.record_issue(early);
        m.record_locate(early, AgentId::new(1), SimDuration::from_secs(2));
        m.record_failure(early);
        m.record_issue(start);
        m.record_locate(start, AgentId::new(2), SimDuration::from_millis(4));
        m.with(|inner| {
            assert_eq!(inner.warmup_locates, 1);
            assert_eq!(inner.locates_issued, 1);
            assert_eq!(inner.locate_failures, 0);
            assert_eq!(inner.locate_times.len(), 1);
        });
        assert_eq!(m.mean_locate_time(), SimDuration::from_millis(4));
    }
}
