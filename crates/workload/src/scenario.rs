//! Scenario construction and execution: the experiment driver.
//!
//! A [`Scenario`] describes a complete experiment — topology, cost model,
//! TAgent population and mobility, query workload — and
//! [`Scenario::run_with`] executes it against any [`LocationScheme`],
//! producing a [`ScenarioReport`] with the paper's metric (average
//! location time) plus everything needed for the extended analyses.

use agentrack_core::{Freshness, LocationScheme};
use agentrack_platform::{NodeId, PlatformConfig, SimPlatform};
use agentrack_sim::{DurationDist, FaultPlan, SimDuration, Topology, TraceSink};
use serde::{Deserialize, Serialize};

use crate::invariants::{self, InvariantReport};
use crate::metrics::Metrics;
use crate::population::Population;
use crate::querier::{QuerierBehavior, TargetSelector, Targets};
use crate::tagent::{Lifecycle, NodeSelector, TAgentBehavior};

/// A complete experiment description.
///
/// Defaults reconstruct the paper's setup: a 16-node LAN, 300 µs one-way
/// latency, 1 ms per-message handler cost (a 2003-era Java agent platform:
/// one tracker saturates at about a thousand messages per second), constant
/// residence times, uniform node and target selection, 2000 queries.
///
/// # Examples
///
/// ```
/// use agentrack_core::{CentralizedScheme, LocationConfig};
/// use agentrack_workload::{RunOptions, Scenario};
///
/// let scenario = Scenario::new("smoke")
///     .with_agents(20)
///     .with_queries(50)
///     .with_seconds(6.0, 3.0);
/// let mut scheme = CentralizedScheme::new(LocationConfig::default());
/// let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
/// assert!(report.locates_completed > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name, echoed in reports.
    pub name: String,
    /// Number of LAN nodes.
    pub nodes: u32,
    /// Master seed: one seed fully determines the run.
    pub seed: u64,
    /// Number of tracked mobile agents (TAgents).
    pub agents: usize,
    /// Residence time at each node.
    pub residence: DurationDist,
    /// Number of querier agents (spread round-robin over nodes).
    pub queriers: usize,
    /// Total locate operations across all queriers.
    pub queries_total: u64,
    /// Warmup before the first query: lets registration and the initial
    /// rehash cascade settle.
    pub warmup: SimDuration,
    /// Measurement span after the warmup.
    pub measure: SimDuration,
    /// One-way remote latency distribution.
    pub latency: DurationDist,
    /// Per-message handler service time (the tracker capacity knob).
    pub service_time: DurationDist,
    /// Zipf exponent for query targets (`None`/0 = uniform).
    pub query_skew: Option<f64>,
    /// Zipf exponent for mobility destinations (`None`/0 = uniform).
    pub mobility_skew: Option<f64>,
    /// Message loss probability (failure injection).
    pub loss: f64,
    /// Message duplication probability (failure injection).
    pub duplication: f64,
    /// Extra run time past `warmup + measure` so late-issued queries (and,
    /// for a saturated tracker, queued answers) still complete.
    pub grace: SimDuration,
    /// Population churn: when set, each TAgent lives for a sampled span,
    /// then deregisters, dies, and spawns a successor — steady population
    /// size, turning membership.
    pub churn_lifespan: Option<DurationDist>,
    /// Scheduled fault injection: partitions, node crashes/restarts,
    /// latency spikes, loss bursts, blackholes (empty = fault-free).
    pub faults: FaultPlan,
    /// Flash crowds: extra bursts of queries concentrated in short
    /// windows, on top of the steady workload (E17, diurnal workloads).
    pub spikes: Vec<QuerySpike>,
    /// WAN regions the nodes are split into (contiguous ranges). `0` or
    /// `1` keeps the plain LAN topology; `> 1` builds a regional
    /// topology where cross-region messages pay `inter_region_latency`
    /// and region links can be severed by
    /// [`agentrack_sim::FaultKind::RegionSever`] faults.
    pub regions: u32,
    /// One-way latency between regions (only used when `regions > 1`).
    pub inter_region_latency: DurationDist,
    /// Freshness requirement every querier attaches to its locates
    /// (default [`Freshness::Any`], the pre-geo behaviour).
    pub freshness: Freshness,
}

/// A flash crowd riding on top of the steady query workload: `queries`
/// extra locates issued by `queriers` dedicated querier agents, paced over
/// `span` starting at `at` (measured from the start of the run).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuerySpike {
    /// When the spike begins, from the start of the run.
    pub at: SimDuration,
    /// How long the spike lasts.
    pub span: SimDuration,
    /// Extra locate operations issued during the spike.
    pub queries: u64,
    /// Dedicated spike queriers (spread round-robin over nodes).
    pub queriers: usize,
}

/// Options for [`Scenario::run_with`]: the instruments to install on the
/// run's platform and the post-run checks to perform. `RunOptions::new()`
/// (or `default()`) is a plain, uninstrumented, unaudited run.
#[derive(Default)]
pub struct RunOptions {
    /// Message tracer installed on the platform (diagnostics; identical
    /// seed ⇒ identical run, so a slow operation found in one run can be
    /// traced in a second).
    pub tracer: Option<agentrack_platform::MsgTracer>,
    /// Structured trace sink: protocol agents emit
    /// [`agentrack_sim::TraceEvent`]s into it, so a locate's multi-hop
    /// path can be reconstructed by correlation id after the run. Keep a
    /// clone to read the records afterwards. Disabled by default.
    pub sink: TraceSink,
    /// When set, audit the post-quiesce invariants after the run and
    /// return the result in [`RunOutput::invariants`].
    pub audit: Option<AuditOptions>,
}

impl RunOptions {
    /// A plain run: no tracer, no trace sink, no invariant audit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a message tracer on the run's platform.
    #[must_use]
    pub fn with_tracer(mut self, tracer: agentrack_platform::MsgTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Installs a structured [`TraceSink`] on the run's platform.
    #[must_use]
    pub fn with_sink(mut self, sink: TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Requests a post-quiesce invariant audit after the run.
    #[must_use]
    pub fn with_audit(mut self, audit: AuditOptions) -> Self {
        self.audit = Some(audit);
        self
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("tracer", &self.tracer.as_ref().map(|_| "MsgTracer"))
            .field("sink", &self.sink)
            .field("audit", &self.audit)
            .finish()
    }
}

/// How to audit the post-quiesce invariants after a run: every reachable
/// TAgent is locatable through the scheme, hash-function versions converge
/// across live copies, no record is owned by two trackers, and mail loss
/// is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditOptions {
    /// Demand *every* live hash-function copy match the primary's version
    /// — only sound when the scheme runs with a
    /// [`version audit`](agentrack_core::LocationConfig::with_version_audit),
    /// since the paper's propagation is deliberately lazy.
    pub strict_versions: bool,
}

/// Everything one [`Scenario::run_with`] call produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The scenario report: the paper's metric plus diagnostics.
    pub report: ScenarioReport,
    /// Per-locate samples `(issue time, target, elapsed)` for tail
    /// analyses, from the bounded reservoir.
    pub samples: Vec<(
        agentrack_sim::SimTime,
        agentrack_platform::AgentId,
        SimDuration,
    )>,
    /// The invariant audit result, when [`RunOptions::audit`] was set.
    pub invariants: Option<InvariantReport>,
}

impl Scenario {
    /// Creates a scenario with the reconstructed paper defaults.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            nodes: 16,
            seed: 42,
            agents: 100,
            residence: DurationDist::Constant(SimDuration::from_millis(500)),
            queriers: 32,
            queries_total: 2000,
            warmup: SimDuration::from_secs(15),
            measure: SimDuration::from_secs(15),
            latency: DurationDist::Constant(SimDuration::from_micros(300)),
            service_time: DurationDist::Constant(SimDuration::from_millis(1)),
            query_skew: None,
            mobility_skew: None,
            loss: 0.0,
            duplication: 0.0,
            grace: SimDuration::from_secs(10),
            churn_lifespan: None,
            faults: FaultPlan::new(),
            spikes: Vec::new(),
            regions: 0,
            inter_region_latency: DurationDist::Constant(SimDuration::from_millis(30)),
            freshness: Freshness::Any,
        }
    }

    /// Sets the TAgent population.
    #[must_use]
    pub fn with_agents(mut self, agents: usize) -> Self {
        self.agents = agents;
        self
    }

    /// Sets the residence time to a constant.
    #[must_use]
    pub fn with_residence_ms(mut self, ms: u64) -> Self {
        self.residence = DurationDist::Constant(SimDuration::from_millis(ms));
        self
    }

    /// Sets the total query count.
    #[must_use]
    pub fn with_queries(mut self, total: u64) -> Self {
        self.queries_total = total;
        self
    }

    /// Sets warmup and measurement spans in seconds.
    #[must_use]
    pub fn with_seconds(mut self, warmup: f64, measure: f64) -> Self {
        self.warmup = SimDuration::from_secs_f64(warmup);
        self.measure = SimDuration::from_secs_f64(measure);
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a scheduled fault plan on the run's platform.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Splits the nodes into `regions` contiguous WAN regions with the
    /// given one-way inter-region latency (milliseconds). `regions <= 1`
    /// keeps the plain LAN.
    #[must_use]
    pub fn with_regions(mut self, regions: u32, inter_region_ms: f64) -> Self {
        self.regions = regions;
        self.inter_region_latency =
            DurationDist::Constant(SimDuration::from_secs_f64(inter_region_ms / 1000.0));
        self
    }

    /// Sets the freshness requirement queriers attach to every locate.
    #[must_use]
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    /// Adds a flash-crowd query spike on top of the steady workload.
    /// May be called repeatedly; spikes stack (a diurnal workload is a
    /// sequence of spikes riding one baseline).
    #[must_use]
    pub fn with_spike(mut self, spike: QuerySpike) -> Self {
        self.spikes.push(spike);
        self
    }

    /// Total virtual duration of the run.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.warmup + self.measure
    }

    /// Runs the scenario against a scheme with the given [`RunOptions`] —
    /// the single entry point behind every `run_*` convenience wrapper,
    /// and the one the spec-driven trial runner drives.
    ///
    /// The options choose the optional instruments (message tracer,
    /// structured [`TraceSink`]) and whether to audit the post-quiesce
    /// invariants afterwards; the returned [`RunOutput`] carries the
    /// report, the per-locate samples, and the audit result when one was
    /// requested.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is degenerate (no agents, no queriers with
    /// queries, zero nodes).
    pub fn run_with(&self, scheme: &mut dyn LocationScheme, options: RunOptions) -> RunOutput {
        let RunOptions {
            tracer,
            sink,
            audit,
        } = options;
        let (report, samples, mut platform, tagents, population) =
            self.run_full(scheme, tracer, sink);
        let invariants = audit.map(|audit| {
            // Pin the roster for the audit: its locate probes advance
            // simulated time, and a population still churning underneath
            // them would fail (or mask) checks for reasons that are not
            // violations.
            if let Some(population) = &population {
                population.freeze();
            }
            invariants::check(
                self,
                scheme,
                &mut platform,
                &tagents,
                &report,
                audit.strict_versions,
            )
        });
        RunOutput {
            report,
            samples,
            invariants,
        }
    }

    /// Runs the scenario against a scheme and reports the results.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is degenerate (no agents, no queriers with
    /// queries, zero nodes).
    #[deprecated(since = "0.2.0", note = "use `Scenario::run_with` with `RunOptions`")]
    pub fn run(&self, scheme: &mut dyn LocationScheme) -> ScenarioReport {
        self.run_with(scheme, RunOptions::new()).report
    }

    /// Like [`Scenario::run`] but also returns the per-locate samples
    /// `(issue time, target, elapsed)` for tail analyses.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Scenario::run`].
    #[deprecated(since = "0.2.0", note = "use `Scenario::run_with` with `RunOptions`")]
    pub fn run_with_samples(
        &self,
        scheme: &mut dyn LocationScheme,
    ) -> (
        ScenarioReport,
        Vec<(
            agentrack_sim::SimTime,
            agentrack_platform::AgentId,
            SimDuration,
        )>,
    ) {
        let out = self.run_with(scheme, RunOptions::new());
        (out.report, out.samples)
    }

    /// Like [`Scenario::run_with_samples`] with a message tracer installed
    /// on the platform (diagnostics; identical seed ⇒ identical run, so a
    /// slow operation found in one run can be traced in a second).
    #[deprecated(
        since = "0.2.0",
        note = "use `Scenario::run_with` with `RunOptions::new().with_tracer(..)`"
    )]
    pub fn run_traced(
        &self,
        scheme: &mut dyn LocationScheme,
        tracer: agentrack_platform::MsgTracer,
    ) -> (
        ScenarioReport,
        Vec<(
            agentrack_sim::SimTime,
            agentrack_platform::AgentId,
            SimDuration,
        )>,
    ) {
        let out = self.run_with(scheme, RunOptions::new().with_tracer(tracer));
        (out.report, out.samples)
    }

    /// Like [`Scenario::run`] with a structured [`TraceSink`] installed on
    /// the platform: protocol agents emit [`agentrack_sim::TraceEvent`]s
    /// into it, so a locate's multi-hop path can be reconstructed by
    /// correlation id after the run.
    #[deprecated(
        since = "0.2.0",
        note = "use `Scenario::run_with` with `RunOptions::new().with_sink(..)`"
    )]
    pub fn run_observed(&self, scheme: &mut dyn LocationScheme, sink: TraceSink) -> ScenarioReport {
        self.run_with(scheme, RunOptions::new().with_sink(sink))
            .report
    }

    /// Runs the scenario (typically one with a fault plan) and then checks
    /// the post-quiesce invariants: every reachable TAgent is locatable
    /// through the scheme, hash-function versions converge across live
    /// copies, no record is owned by two trackers, and mail loss is
    /// accounted for.
    ///
    /// `strict_versions` demands *every* live hash-function copy match the
    /// primary's version — only sound when the scheme runs with a
    /// [`version audit`](agentrack_core::LocationConfig::version_audit),
    /// since the paper's propagation is deliberately lazy.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Scenario::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Scenario::run_with` with `RunOptions::new().with_audit(..)`"
    )]
    pub fn run_chaos(
        &self,
        scheme: &mut dyn LocationScheme,
        strict_versions: bool,
    ) -> (ScenarioReport, InvariantReport) {
        let out = self.run_with(
            scheme,
            RunOptions::new().with_audit(AuditOptions { strict_versions }),
        );
        (out.report, out.invariants.expect("audit was requested"))
    }

    /// Like [`Scenario::run_chaos`] with a structured [`TraceSink`]
    /// installed for the whole run (fault phase and audit alike). Keep a
    /// clone of the sink to read the records afterwards — e.g. pair
    /// [`agentrack_sim::TraceEvent::RecoveryStart`] /
    /// [`agentrack_sim::TraceEvent::RecoveryEnd`] per tracker to measure
    /// recovery times, or count `StaleAnswer` events per scheme.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Scenario::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Scenario::run_with` with `RunOptions::new().with_sink(..).with_audit(..)`"
    )]
    pub fn run_chaos_traced(
        &self,
        scheme: &mut dyn LocationScheme,
        strict_versions: bool,
        sink: TraceSink,
    ) -> (ScenarioReport, InvariantReport) {
        let out = self.run_with(
            scheme,
            RunOptions::new()
                .with_sink(sink)
                .with_audit(AuditOptions { strict_versions }),
        );
        (out.report, out.invariants.expect("audit was requested"))
    }

    #[allow(clippy::type_complexity)]
    fn run_full(
        &self,
        scheme: &mut dyn LocationScheme,
        tracer: Option<agentrack_platform::MsgTracer>,
        sink: TraceSink,
    ) -> (
        ScenarioReport,
        Vec<(
            agentrack_sim::SimTime,
            agentrack_platform::AgentId,
            SimDuration,
        )>,
        SimPlatform,
        Vec<agentrack_platform::AgentId>,
        Option<Population>,
    ) {
        assert!(self.nodes > 0, "scenario needs nodes");
        assert!(self.agents > 0, "scenario needs agents");
        assert!(
            self.queriers > 0 || self.queries_total == 0,
            "queries need queriers"
        );
        assert!(
            self.queries_total == 0 || !self.measure.is_zero(),
            "queries need a non-zero measurement span to be paced over"
        );

        let topology = if self.regions > 1 {
            Topology::regional(
                self.nodes,
                self.latency,
                self.regions,
                self.inter_region_latency,
            )
        } else {
            Topology::lan(self.nodes, self.latency)
        }
        .with_loss(self.loss)
        .with_duplication(self.duplication);
        let platform_config = PlatformConfig::default()
            .with_seed(self.seed)
            .with_handler_service_time(self.service_time);
        let mut platform = SimPlatform::new(topology, platform_config);
        if let Some(tracer) = tracer {
            platform.set_tracer(tracer);
        }
        if sink.is_enabled() {
            platform.set_trace_sink(sink);
        }
        if !self.faults.is_empty() {
            platform.set_fault_plan(&self.faults);
        }
        // Queries ramp up during the tail of the warmup so the measured
        // window sees steady state; only locates issued after the warmup
        // count.
        let measure_start = agentrack_sim::SimTime::ZERO + self.warmup;
        let metrics = Metrics::starting_at(measure_start);

        scheme.bootstrap(&mut platform);

        // TAgents, spread round-robin over nodes and staggered over the
        // first part of the warmup: a population materialising in one
        // instant would bury the initial IAgent under a registration
        // backlog deep enough to starve its own hash-function installs —
        // a bootstrapping pathology, not the steady state the paper
        // measures.
        let spawn_span = (self.warmup / 2).min(SimDuration::from_secs(10));
        let population = Population::new();
        let lifecycle = self.churn_lifespan.map(|lifespan| Lifecycle {
            lifespan,
            factory: scheme.client_factory(),
            population: population.clone(),
        });
        let mut tagents = Vec::with_capacity(self.agents);
        for i in 0..self.agents {
            let node = NodeId::new((i as u32) % self.nodes);
            let delay = spawn_span.mul_f64(i as f64 / self.agents.max(1) as f64);
            let mut behavior = TAgentBehavior::new(
                scheme.make_client(),
                self.residence,
                NodeSelector::new(self.nodes, self.mobility_skew),
                self.nodes,
                metrics.clone(),
            );
            if let Some(lifecycle) = &lifecycle {
                behavior = behavior.with_lifecycle(lifecycle.clone());
            }
            tagents.push(platform.spawn_after(Box::new(behavior), node, delay));
        }
        let targets = if lifecycle.is_some() {
            Targets::Live(population.clone())
        } else {
            Targets::Fixed(tagents.clone())
        };

        // Queriers: split the query budget evenly, remainder to the first.
        if self.queries_total > 0 {
            let per = self.queries_total / self.queriers as u64;
            let mut remainder = self.queries_total % self.queriers as u64;
            // Space queries so the configured total spreads over the
            // measurement span. Intervals are jittered and each querier is
            // phase-shifted: synchronized queriers would hit trackers in
            // lock-step bursts, measuring an artefact instead of the
            // steady-state location time. Queriers begin during the warmup
            // ramp (their early locates are exercised but not recorded) so
            // switching the query load on does not perturb the measured
            // window.
            let ramp = (self.warmup / 2).min(SimDuration::from_secs(10));
            let interval = self
                .measure
                .mul_f64(self.queriers as f64 / self.queries_total as f64);
            let interval_dist = DurationDist::Uniform {
                lo: interval.mul_f64(0.5),
                hi: interval.mul_f64(1.5),
            };
            let span_scale = (ramp + self.measure).as_secs_f64() / self.measure.as_secs_f64();
            for i in 0..self.queriers {
                let mut count = per;
                if remainder > 0 {
                    count += 1;
                    remainder -= 1;
                }
                if count == 0 {
                    continue;
                }
                // Extra queries cover the warmup ramp at the same pace.
                let count = (count as f64 * span_scale).ceil() as u64;
                let node = NodeId::new((i as u32) % self.nodes);
                let phase = interval.mul_f64(i as f64 / self.queriers as f64);
                let behavior = QuerierBehavior::new(
                    scheme.make_client(),
                    targets.clone(),
                    TargetSelector::new(self.agents, self.query_skew),
                    (self.warmup - ramp) + phase,
                    interval_dist,
                    count,
                    metrics.clone(),
                )
                .with_freshness(self.freshness);
                platform.spawn(Box::new(behavior), node);
            }
        }

        // Flash crowds: dedicated queriers that sit silent until their
        // spike instant, then issue their budget paced over the spike span.
        // They share the metrics sink — a spike inside the measured window
        // shows up in the locate percentiles, which is the point.
        for spike in self.spikes.iter().copied() {
            assert!(spike.queriers > 0, "a spike needs queriers");
            assert!(!spike.span.is_zero(), "a spike needs a non-zero span");
            let per = spike.queries / spike.queriers as u64;
            let mut remainder = spike.queries % spike.queriers as u64;
            let interval = spike
                .span
                .mul_f64(spike.queriers as f64 / spike.queries.max(1) as f64);
            let interval_dist = DurationDist::Uniform {
                lo: interval.mul_f64(0.5),
                hi: interval.mul_f64(1.5),
            };
            for i in 0..spike.queriers {
                let mut count = per;
                if remainder > 0 {
                    count += 1;
                    remainder -= 1;
                }
                if count == 0 {
                    continue;
                }
                let node = NodeId::new((i as u32) % self.nodes);
                let phase = interval.mul_f64(i as f64 / spike.queriers as f64);
                let behavior = QuerierBehavior::new(
                    scheme.make_client(),
                    targets.clone(),
                    TargetSelector::new(self.agents, self.query_skew),
                    spike.at + phase,
                    interval_dist,
                    count,
                    metrics.clone(),
                )
                .with_freshness(self.freshness);
                platform.spawn(Box::new(behavior), node);
            }
        }

        platform.run_for(self.duration() + self.grace);

        let scheme_stats = scheme.stats();
        let platform_stats = platform.stats();
        let registry = scheme.registry().snapshot();
        let sum = |f: fn(&agentrack_sim::TrackerMetrics) -> u64| -> u64 {
            registry.trackers.iter().map(|(_, t)| f(t)).sum()
        };
        let (mail_buffered, mail_flushed, mail_lost) = (
            sum(|t| t.mail_buffered),
            sum(|t| t.mail_flushed),
            sum(|t| t.mail_lost),
        );
        let trace_dropped = platform.trace_sink().dropped();
        if trace_dropped > 0 {
            eprintln!(
                "warning: scenario '{}' ({}): trace ring overflowed, {} record(s) dropped — \
                 span trees for early operations may be incomplete; use a larger TraceSink",
                self.name,
                scheme.name(),
                trace_dropped,
            );
        }
        let samples = metrics.with(|m| std::mem::take(&mut m.locate_samples));
        let report = metrics.with(|m| ScenarioReport {
            scenario: self.name.clone(),
            scheme: scheme.name().to_owned(),
            agents: self.agents,
            residence_ms: self.residence.mean().as_millis_f64(),
            locates_issued: m.locates_issued,
            locates_completed: m.locate_times.len() as u64,
            locate_failures: m.locate_failures,
            mean_locate_ms: m.locate_times.mean().as_millis_f64(),
            p50_locate_ms: m.locate_times.percentile(50.0).as_millis_f64(),
            p95_locate_ms: m.locate_times.percentile(95.0).as_millis_f64(),
            p99_locate_ms: m.locate_times.percentile(99.0).as_millis_f64(),
            max_locate_ms: m.locate_times.max().as_millis_f64(),
            registrations: m.registrations,
            moves: m.moves,
            births: m.births,
            deaths: m.deaths,
            trackers: scheme_stats.trackers,
            peak_trackers: scheme_stats.peak_trackers,
            splits: scheme_stats.splits,
            merges: scheme_stats.merges,
            stale_hits: scheme_stats.stale_hits,
            hf_fetches: scheme_stats.hf_fetches,
            records_handed_off: scheme_stats.records_handed_off,
            chain_hops: scheme_stats.chain_hops,
            iagent_moves: scheme_stats.iagent_moves,
            tree_height: scheme_stats.tree_height,
            mean_prefix_bits: if scheme_stats.trackers > 0 {
                scheme_stats.depth_bits_total as f64 / scheme_stats.trackers as f64
            } else {
                0.0
            },
            messages_sent: platform_stats.messages_sent,
            messages_remote: platform_stats.messages_remote,
            messages_failed: platform_stats.messages_failed,
            mail_buffered,
            mail_flushed,
            mail_lost,
            record_syncs: scheme_stats.record_syncs,
            recoveries_started: scheme_stats.recoveries_started,
            recoveries_completed: scheme_stats.recoveries_completed,
            stale_answers: scheme_stats.stale_answers,
            replica_answers: scheme_stats.replica_answers,
            freshness_refusals: scheme_stats.freshness_refusals,
            hedged_locates: scheme_stats.hedged_locates,
            bound_violations: scheme_stats.bound_violations,
            stale_located: m.stale_answers,
            max_answer_age_ms: m.max_answer_age_ms,
            trace_dropped,
            samples_retained: samples.len() as u64,
            samples_seen: m.samples_seen,
        });
        // The roster the invariant audit probes: under churn the original
        // spawn list is long dead — hand back the live successors instead,
        // plus the shared roster so the audit can freeze further churn.
        let (tagents, population) = if self.churn_lifespan.is_some() {
            (population.snapshot(), Some(population))
        } else {
            (tagents, None)
        };
        (report, samples, platform, tagents, population)
    }
}

/// Results of one scenario run: the paper's metric plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheme name.
    pub scheme: String,
    /// TAgent population.
    pub agents: usize,
    /// Mean residence time in milliseconds.
    pub residence_ms: f64,
    /// Locates issued.
    pub locates_issued: u64,
    /// Locates answered.
    pub locates_completed: u64,
    /// Locates that gave up.
    pub locate_failures: u64,
    /// Average location time (the paper's metric), in milliseconds.
    pub mean_locate_ms: f64,
    /// Median location time in milliseconds.
    pub p50_locate_ms: f64,
    /// 95th-percentile location time in milliseconds.
    pub p95_locate_ms: f64,
    /// 99th-percentile location time in milliseconds (the flash-crowd
    /// experiments report the tail the spike creates).
    pub p99_locate_ms: f64,
    /// Worst location time in milliseconds.
    pub max_locate_ms: f64,
    /// Registrations completed.
    pub registrations: u64,
    /// TAgent moves performed.
    pub moves: u64,
    /// TAgents born (initial population plus churn successors).
    pub births: u64,
    /// TAgents that died (churn).
    pub deaths: u64,
    /// Trackers at the end of the run.
    pub trackers: u64,
    /// Peak tracker count.
    pub peak_trackers: u64,
    /// Splits committed.
    pub splits: u64,
    /// Merges committed.
    pub merges: u64,
    /// Stale-copy detections (`NotResponsible` answers).
    pub stale_hits: u64,
    /// Hash-function copies served by the HAgent.
    pub hf_fetches: u64,
    /// Records handed off between IAgents.
    pub records_handed_off: u64,
    /// Forwarding-chain hops (forwarding baseline).
    pub chain_hops: u64,
    /// IAgent locality migrations (extension E9).
    pub iagent_moves: u64,
    /// Hash-tree height after the latest rehash (hashed scheme).
    pub tree_height: u64,
    /// Mean consumed-prefix length over IAgent leaves (hashed scheme).
    pub mean_prefix_bits: f64,
    /// Total platform messages.
    pub messages_sent: u64,
    /// Messages that crossed nodes (vs. node-local delivery).
    pub messages_remote: u64,
    /// Messages that bounced.
    pub messages_failed: u64,
    /// Guaranteed-delivery messages buffered while their target migrated.
    pub mail_buffered: u64,
    /// Buffered messages flushed once the target re-registered.
    pub mail_flushed: u64,
    /// Buffered messages dropped after their TTL expired (silent loss
    /// made visible).
    pub mail_lost: u64,
    /// Replication batches shipped to buddy replicas (hashed scheme with
    /// replication enabled).
    pub record_syncs: u64,
    /// Recoveries entered by restarted trackers that lost soft state.
    pub recoveries_started: u64,
    /// Recoveries that converged (or timed out) and resumed normal
    /// answering.
    pub recoveries_completed: u64,
    /// Degraded-mode `Located{stale}` answers served during recovery.
    pub stale_answers: u64,
    /// Freshness-bounded locates answered from a buddy replica by a
    /// non-responsible tracker (the partition-tolerant local-read path).
    pub replica_answers: u64,
    /// Locates a tracker refused to answer from the record it had because
    /// the record was older than the declared freshness bound.
    pub freshness_refusals: u64,
    /// Duplicate locates hedged to the responsible tracker's buddy
    /// replica because the tracker's node looked unreachable.
    pub hedged_locates: u64,
    /// Answers whose declared age exceeded the locate's freshness bound
    /// (audited client-side; the invariant demands zero).
    pub bound_violations: u64,
    /// Completed measured locates whose answer was marked stale (served
    /// from a replica or a recovering tracker), as seen by queriers.
    pub stale_located: u64,
    /// Largest declared answer age (ms) across completed measured
    /// locates.
    pub max_answer_age_ms: u64,
    /// Trace records dropped because the [`TraceSink`] ring overflowed
    /// (zero when tracing is disabled or the ring was large enough).
    pub trace_dropped: u64,
    /// Per-locate samples retained in the bounded reservoir.
    pub samples_retained: u64,
    /// Per-locate samples offered to the reservoir (every completed
    /// measured locate); `samples_retained < samples_seen` means the
    /// retained set is a uniform subsample.
    pub samples_seen: u64,
}

impl ScenarioReport {
    /// Fraction of issued locates that completed.
    #[must_use]
    pub fn completion_ratio(&self) -> f64 {
        if self.locates_issued == 0 {
            return 1.0;
        }
        self.locates_completed as f64 / self.locates_issued as f64
    }
}
