//! TAgents: the tracked mobile agents of the paper's experiments.
//!
//! A TAgent registers with the location scheme on creation, then roams:
//! it stays at each node for a sampled *residence time*, migrates to a
//! next node chosen by its mobility model, and reports each arrival to its
//! tracker ("each time A moves, it informs its IAgent about its new
//! location").

use agentrack_core::{ClientEvent, ClientFactory, DirectoryClient};
use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, TimerId};
use agentrack_sim::{DurationDist, Zipf};

use crate::metrics::Metrics;
use crate::population::Population;

/// Churn parameters: how long a TAgent lives, and how its successor is
/// equipped. A dying agent deregisters, leaves the roster, and spawns a
/// replacement at a random node — keeping the population size steady while
/// its membership turns over, the "open system" dynamic of the paper's
/// introduction.
#[derive(Clone)]
pub struct Lifecycle {
    /// Lifespan distribution, sampled per agent.
    pub lifespan: DurationDist,
    /// Constructor for the successor's directory client.
    pub factory: ClientFactory,
    /// The shared roster of live agents.
    pub population: Population,
}

impl std::fmt::Debug for Lifecycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lifecycle")
            .field("lifespan", &self.lifespan)
            .field("population", &self.population.len())
            .finish_non_exhaustive()
    }
}

/// How a TAgent picks its next node.
#[derive(Debug, Clone)]
pub enum NodeSelector {
    /// Uniformly random among all nodes (the paper's implicit model).
    Uniform,
    /// Zipf-skewed node popularity (extension experiment E6).
    Zipf(Zipf),
}

impl NodeSelector {
    /// Builds a selector: uniform, or Zipf when a skew is given.
    #[must_use]
    pub fn new(node_count: u32, skew: Option<f64>) -> Self {
        match skew {
            Some(s) if s > 0.0 => NodeSelector::Zipf(Zipf::new(node_count as usize, s)),
            _ => NodeSelector::Uniform,
        }
    }

    fn pick(&self, ctx: &mut AgentCtx<'_>, node_count: u32) -> NodeId {
        match self {
            NodeSelector::Uniform => NodeId::new(ctx.rng().index(node_count as usize) as u32),
            NodeSelector::Zipf(zipf) => {
                let rng = ctx.rng();
                NodeId::new(zipf.sample(rng) as u32)
            }
        }
    }
}

/// Behaviour of a tracked mobile agent.
pub struct TAgentBehavior {
    client: Box<dyn DirectoryClient>,
    residence: DurationDist,
    selector: NodeSelector,
    node_count: u32,
    metrics: Metrics,
    residence_timer: Option<TimerId>,
    lifecycle: Option<Lifecycle>,
    death_timer: Option<TimerId>,
}

impl TAgentBehavior {
    /// Creates a TAgent with the given scheme client and mobility model.
    #[must_use]
    pub fn new(
        client: Box<dyn DirectoryClient>,
        residence: DurationDist,
        selector: NodeSelector,
        node_count: u32,
        metrics: Metrics,
    ) -> Self {
        TAgentBehavior {
            client,
            residence,
            selector,
            node_count,
            metrics,
            residence_timer: None,
            lifecycle: None,
            death_timer: None,
        }
    }

    /// Gives the TAgent a finite lifespan; it will deregister, die, and
    /// spawn a successor.
    #[must_use]
    pub fn with_lifecycle(mut self, lifecycle: Lifecycle) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Dies: deregister, leave the roster, spawn the successor, dispose.
    fn die(&mut self, ctx: &mut AgentCtx<'_>) {
        let lifecycle = self.lifecycle.clone().expect("death without lifecycle");
        self.client.deregister(ctx);
        let me = ctx.self_id();
        lifecycle.population.remove(me);
        self.metrics.record_death();

        let successor = TAgentBehavior::new(
            (lifecycle.factory)(),
            self.residence,
            self.selector.clone(),
            self.node_count,
            self.metrics.clone(),
        )
        .with_lifecycle(lifecycle);
        let node = NodeId::new(ctx.rng().index(self.node_count as usize) as u32);
        ctx.create_agent(Box::new(successor), node);
        ctx.dispose();
    }

    fn schedule_move(&mut self, ctx: &mut AgentCtx<'_>) {
        let stay = ctx.rng().sample(&self.residence);
        self.residence_timer = Some(ctx.set_timer(stay));
    }
}

impl Agent for TAgentBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        self.schedule_move(ctx);
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle.population.add(ctx.self_id());
            self.metrics.record_birth();
            let span = ctx.rng().sample(&lifecycle.lifespan);
            self.death_timer = Some(ctx.set_timer(span));
        }
    }

    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.metrics.record_move();
        self.client.moved(ctx);
        self.schedule_move(ctx);
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, _lost_soft_state: bool) {
        // The node came back: all pre-crash timers are void, so restart
        // the residence clock (and lifespan, re-sampled — the original
        // deadline died with its timer), and let the client re-announce
        // this agent to whatever tracker state survived.
        self.client.restarted(ctx);
        self.schedule_move(ctx);
        if let Some(lifecycle) = &self.lifecycle {
            let span = ctx.rng().sample(&lifecycle.lifespan);
            self.death_timer = Some(ctx.set_timer(span));
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.death_timer == Some(timer) {
            // A frozen population (the post-quiesce audit) suspends churn:
            // the deadline lapses and the agent lives on.
            let frozen = self
                .lifecycle
                .as_ref()
                .is_some_and(|l| l.population.is_frozen());
            if !frozen {
                self.die(ctx);
            }
            return;
        }
        if self.residence_timer == Some(timer) {
            self.residence_timer = None;
            let next = self.selector.pick(ctx, self.node_count);
            if next == ctx.node() {
                // Staying put still restarts the residence clock.
                self.client.moved(ctx);
                self.schedule_move(ctx);
            } else {
                ctx.dispatch(next);
            }
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if self.client.on_message(ctx, from, payload) == ClientEvent::Registered {
            self.metrics.record_registration();
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }

    fn state_size(&self) -> usize {
        768 // a roaming worker with a small result buffer
    }
}

impl std::fmt::Debug for TAgentBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TAgentBehavior")
            .field("residence", &self.residence)
            .finish_non_exhaustive()
    }
}
