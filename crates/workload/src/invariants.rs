//! Post-quiesce invariant checking for fault-injection runs.
//!
//! After a chaos scenario drains, [`check`] probes the system the way an
//! operator would audit it:
//!
//! * **Locatability** — every live, reachable TAgent must still be
//!   locatable through its scheme (a fresh probe client issues one locate
//!   per agent). Skipped for the forwarding baseline under any fault plan:
//!   a chain link lost to a crash or partition is unrecoverable by design,
//!   which is exactly the weakness the paper's mechanism avoids.
//! * **Version convergence** — the primary HAgent must hold the highest
//!   hash-function version among live copies; with `strict_versions`,
//!   every live copy (standby, LHAgents, IAgents) must match it.
//! * **Single ownership** — for the hashed scheme, the live IAgents'
//!   record counts must not exceed the live population: no agent is owned
//!   by two IAgents after the tree settles.
//! * **Mail accounting** — a fault-free, loss-free run must lose no
//!   guaranteed-delivery mail.
//! * **Recovery convergence** — every recovery a restarted tracker
//!   entered must have finished by quiesce (the recovery timeout bounds
//!   it); a tracker stuck recovering would answer stale forever. Together
//!   with locatability this is the durability guarantee: no agent stays
//!   permanently unlocatable after its tracker crashes and restarts.
//! * **Freshness bounds** — no answer delivered during the run may
//!   declare an age above the locate's freshness bound (the scheme's
//!   client-side audit counter must be zero), and once every recovery has
//!   converged the post-quiesce probes must be answered authoritatively —
//!   a stale probe answer means a replica set failed to reconverge after
//!   the faults healed.
//!
//! Checks that a fault plan makes undecidable (e.g. locatability of agents
//! stranded on a node that never restarts) are narrowed to the reachable
//! population rather than skipped wholesale.
//!
//! The audit first freezes directory adaptation
//! ([`LocationScheme::set_adaptation_frozen`]): a post-spike merge cascade
//! can still be committing versions while the probe runs, and sampling
//! versions mid-install would report a convergence failure that is really
//! an in-flight broadcast. In-flight leases still commit (bounded by the
//! lease timeout, inside the probe window); only new grants stop.

use std::sync::Arc;

use agentrack_core::{ClientEvent, CopyRole, DirectoryClient, LocationScheme};
use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, SimPlatform, TimerId};
use agentrack_sim::SimDuration;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::scenario::{Scenario, ScenarioReport};

/// Pace between probe locates: fast enough to keep the audit short, slow
/// enough not to saturate a recovering tracker.
const PROBE_PACE: SimDuration = SimDuration::from_millis(50);

/// Extra run time after the last probe is issued, covering a full retry
/// budget (8 attempts x 800 ms) with headroom.
const PROBE_SLACK: SimDuration = SimDuration::from_secs(8);

/// Outcome of the post-quiesce audit of one chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Live, reachable TAgents the probe attempted to locate.
    pub probed: usize,
    /// Probes answered with a location.
    pub located: usize,
    /// Raw ids of agents the probe could not locate (empty unless the
    /// locatability check applied and failed).
    pub unlocatable: Vec<u64>,
    /// Live hash-function copies inspected (0 for non-hashed schemes).
    pub version_copies: usize,
    /// Whether the version-convergence check passed (vacuously true when
    /// no copies report versions).
    pub versions_converged: bool,
    /// Records held across live trackers at quiesce.
    pub records_held: u64,
    /// Live TAgents at quiesce.
    pub live_agents: usize,
    /// Guaranteed-delivery messages lost to mailbox expiry.
    pub mail_lost: u64,
    /// Recoveries entered by restarted trackers over the whole run.
    pub recoveries_started: u64,
    /// Recoveries that converged or timed out.
    pub recoveries_completed: u64,
    /// Degraded-mode (stale) locate answers served during recoveries.
    pub stale_answers: u64,
    /// Answers whose declared age exceeded the locate's freshness bound
    /// over the whole run (must be zero).
    pub bound_violations: u64,
    /// Post-quiesce probes answered with a stale (replica/recovery)
    /// record instead of the authoritative one.
    pub probe_stale: usize,
    /// Human-readable invariant violations; empty means the run passed.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Shared result cell the probe agent writes into.
#[derive(Debug, Default)]
struct ProbeOutcome {
    located: Vec<u64>,
    failed: Vec<u64>,
    stale: Vec<u64>,
}

/// A one-shot audit agent: locates each target in turn through a fresh
/// scheme client and records which answers arrive.
struct ProbeBehavior {
    client: Box<dyn DirectoryClient>,
    targets: Vec<AgentId>,
    next: usize,
    probe_timer: Option<TimerId>,
    results: Arc<Mutex<ProbeOutcome>>,
}

impl ProbeBehavior {
    fn issue_next(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.next < self.targets.len() {
            let token = self.next as u64;
            let target = self.targets[self.next];
            self.next += 1;
            self.client.locate(ctx, target, token);
            self.probe_timer = Some(ctx.set_timer(PROBE_PACE));
        }
    }

    fn handle(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        f: impl FnOnce(&mut dyn DirectoryClient, &mut AgentCtx<'_>) -> ClientEvent,
    ) {
        match f(self.client.as_mut(), ctx) {
            ClientEvent::Located { target, stale, .. } => {
                let mut results = self.results.lock();
                results.located.push(target.raw());
                if stale {
                    results.stale.push(target.raw());
                }
            }
            ClientEvent::Failed { target, .. } => self.results.lock().failed.push(target.raw()),
            _ => {}
        }
    }
}

impl Agent for ProbeBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.issue_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.probe_timer == Some(timer) {
            self.probe_timer = None;
            self.issue_next(ctx);
            return;
        }
        self.handle(ctx, |client, ctx| client.on_timer(ctx, timer));
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        self.handle(ctx, |client, ctx| client.on_message(ctx, from, payload));
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        self.handle(ctx, |client, ctx| {
            client.on_delivery_failed(ctx, to, node, payload)
        });
    }
}

impl std::fmt::Debug for ProbeBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeBehavior")
            .field("targets", &self.targets.len())
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

/// Runs the full post-quiesce audit; see the module docs for the
/// invariants.
pub(crate) fn check(
    scenario: &Scenario,
    scheme: &mut dyn LocationScheme,
    platform: &mut SimPlatform,
    tagents: &[AgentId],
    report: &ScenarioReport,
    strict_versions: bool,
) -> InvariantReport {
    let mut violations = Vec::new();

    // Drain the control plane before auditing, the way an operator would:
    // no new rehash leases are granted from here on (in-flight ones still
    // commit, bounded by the lease timeout, well inside the probe window),
    // so the version sample at the end observes a settled directory
    // instead of racing a cascade that is still adapting to post-fault
    // load.
    scheme.set_adaptation_frozen(true);

    // The audited population: agents still alive (churn may have replaced
    // some) on nodes that are up. With a fully-healing plan that is every
    // survivor; under an unhealed plan, stranded agents are unreachable by
    // construction and excluded.
    let reachable: Vec<AgentId> = tagents
        .iter()
        .copied()
        .filter(|&id| {
            platform.is_live(id)
                && platform
                    .agent_node(id)
                    .is_some_and(|node| !platform.node_is_down(node))
        })
        .collect();

    // -- Locatability ----------------------------------------------------
    // Forwarding keeps per-node pointer chains with no repair path: any
    // crash or partition can sever a chain permanently (the gap this
    // scheme is the foil for), so the check only binds it on fault-free
    // plans.
    let check_locate = scenario.faults.is_empty() || scheme.name() != "forwarding";
    let results = Arc::new(Mutex::new(ProbeOutcome::default()));
    let mut probed = 0;
    if !reachable.is_empty() {
        probed = reachable.len();
        let probe = ProbeBehavior {
            client: scheme.make_client(),
            targets: reachable.clone(),
            next: 0,
            probe_timer: None,
            results: Arc::clone(&results),
        };
        platform.spawn(Box::new(probe), NodeId::new(0));
        platform.run_for(PROBE_PACE * probed as u64 + PROBE_SLACK);
    }
    let outcome = results.lock();
    let located = outcome.located.len();
    let probe_stale = outcome.stale.len();
    let mut unlocatable: Vec<u64> = reachable
        .iter()
        .map(|id| id.raw())
        .filter(|raw| !outcome.located.contains(raw))
        .collect();
    drop(outcome);
    unlocatable.sort_unstable();
    if check_locate && !unlocatable.is_empty() {
        violations.push(format!(
            "{} of {} reachable agents unlocatable after quiesce: {:?}",
            unlocatable.len(),
            probed,
            &unlocatable[..unlocatable.len().min(8)]
        ));
    }

    // -- Version convergence ---------------------------------------------
    let versions: Vec<(u64, CopyRole, u64)> = scheme
        .hash_versions()
        .into_iter()
        .filter(|&(id, _, _)| platform.is_live(AgentId::new(id)))
        .collect();
    let mut versions_converged = true;
    if !versions.is_empty() {
        let max = versions.iter().map(|&(_, _, v)| v).max().unwrap_or(0);
        let primary = versions
            .iter()
            .find(|&&(_, role, _)| role == CopyRole::Primary);
        match primary {
            Some(&(_, _, v)) if v < max => {
                versions_converged = false;
                violations.push(format!(
                    "primary HAgent at hash-function version {v}, but a live copy holds {max}"
                ));
            }
            None => {
                versions_converged = false;
                violations.push("no live primary HAgent at quiesce".to_owned());
            }
            Some(_) => {}
        }
        if strict_versions {
            let stale: Vec<(u64, u64)> = versions
                .iter()
                .filter(|&&(_, _, v)| v != max)
                .map(|&(id, _, v)| (id, v))
                .collect();
            if !stale.is_empty() {
                versions_converged = false;
                violations.push(format!(
                    "{} live hash-function copies below version {max}: {:?}",
                    stale.len(),
                    &stale[..stale.len().min(8)]
                ));
            }
        }
    }

    // -- Single ownership ------------------------------------------------
    // Live trackers' record-count gauges (refreshed on their periodic
    // check timer) must not exceed the live population: an agent counted
    // twice means two IAgents both believe they own it.
    let live_agents = tagents.iter().filter(|&&id| platform.is_live(id)).count();
    let records_held: u64 = scheme
        .registry()
        .snapshot()
        .trackers
        .iter()
        .filter(|&&(id, _)| platform.is_live(AgentId::new(id)))
        .map(|(_, t)| t.records_held as u64)
        .sum();
    if scheme.name() == "hashed" && records_held > live_agents as u64 {
        violations.push(format!(
            "live IAgents hold {records_held} records for {live_agents} live agents \
             (duplicate ownership)"
        ));
    }

    // -- Mail accounting -------------------------------------------------
    if scenario.faults.is_empty() && scenario.loss == 0.0 && report.mail_lost > 0 {
        violations.push(format!(
            "{} guaranteed-delivery messages lost in a fault-free, loss-free run",
            report.mail_lost
        ));
    }

    // -- Recovery convergence --------------------------------------------
    // Recovery is bounded by its timeout, so by the time the audit runs
    // every recovery that started must have declared RecoveryEnd. One that
    // has not is wedged in degraded mode, answering stale indefinitely.
    let stats = scheme.stats();
    if stats.recoveries_started > stats.recoveries_completed {
        violations.push(format!(
            "{} of {} tracker recoveries still unfinished at quiesce",
            stats.recoveries_started - stats.recoveries_completed,
            stats.recoveries_started
        ));
    }

    // -- Freshness bounds ------------------------------------------------
    // The client audits every answer against the bound its locate
    // declared; a single violation means a tracker served a record older
    // than it promised.
    if stats.bound_violations > 0 {
        violations.push(format!(
            "{} answers declared an age above their locate's freshness bound",
            stats.bound_violations
        ));
    }
    if let Some(bound) = scenario.freshness.bound_ms() {
        if report.max_answer_age_ms > bound {
            violations.push(format!(
                "an answer declared age {} ms against a {} ms staleness budget",
                report.max_answer_age_ms, bound
            ));
        }
    }
    // With every recovery converged and the faults healed, replica sets
    // must have reconverged: the post-quiesce probes (issued without a
    // freshness bound) must come from authoritative records, never from a
    // stale replica or recovery copy.
    if stats.recoveries_started == stats.recoveries_completed && probe_stale > 0 {
        violations.push(format!(
            "{probe_stale} post-quiesce probes answered stale after every recovery converged \
             (replica set failed to reconverge)"
        ));
    }

    scheme.set_adaptation_frozen(false);

    InvariantReport {
        probed,
        located,
        unlocatable,
        version_copies: versions.len(),
        versions_converged,
        records_held,
        live_agents,
        mail_lost: report.mail_lost,
        recoveries_started: stats.recoveries_started,
        recoveries_completed: stats.recoveries_completed,
        stale_answers: stats.stale_answers,
        bound_violations: stats.bound_violations,
        probe_stale,
        violations,
    }
}
