//! Querier agents: issue locate operations and measure location time.
//!
//! The paper's metric is "the average response time of a query for the
//! location of a mobile agent (TAgent) selected randomly from all the
//! mobile agents in the system". A querier starts after the warmup, issues
//! a configured number of locates at a configured pace, and records
//! issue-to-answer times into the shared [`Metrics`].

use std::collections::HashMap;

use agentrack_core::{ClientEvent, DirectoryClient, Freshness};
use agentrack_platform::{Agent, AgentCtx, AgentId, NodeId, Payload, TimerId};
use agentrack_sim::{DurationDist, SimDuration, SimTime, Zipf};

use crate::metrics::Metrics;
use crate::population::Population;

/// Where a querier draws its targets from.
#[derive(Debug, Clone)]
pub enum Targets {
    /// A fixed roster (the paper's experiments: the population is static).
    Fixed(Vec<AgentId>),
    /// The live roster, under churn.
    Live(Population),
}

impl Targets {
    fn len(&self) -> usize {
        match self {
            Targets::Fixed(v) => v.len(),
            Targets::Live(p) => p.len(),
        }
    }
}

/// How a querier picks its next target.
#[derive(Debug, Clone)]
pub enum TargetSelector {
    /// Uniformly random over the population (the paper's model).
    Uniform,
    /// Zipf-skewed popularity: some agents are queried far more often
    /// (extension experiment E6).
    Zipf(Zipf),
}

impl TargetSelector {
    /// Builds a selector: uniform, or Zipf when a skew is given.
    #[must_use]
    pub fn new(population: usize, skew: Option<f64>) -> Self {
        match skew {
            Some(s) if s > 0.0 => TargetSelector::Zipf(Zipf::new(population, s)),
            _ => TargetSelector::Uniform,
        }
    }

    fn pick(&self, ctx: &mut AgentCtx<'_>, targets: &Targets) -> Option<AgentId> {
        match targets {
            Targets::Fixed(v) => Some(match self {
                TargetSelector::Uniform => v[ctx.rng().index(v.len())],
                TargetSelector::Zipf(zipf) => {
                    let rng = ctx.rng();
                    v[zipf.sample(rng).min(v.len() - 1)]
                }
            }),
            // Under churn, Zipf ranks follow roster order: the oldest
            // survivors stay the hot keys while the population turns over.
            Targets::Live(p) => match self {
                TargetSelector::Uniform => p.sample(ctx.rng()),
                TargetSelector::Zipf(zipf) => p.sample_zipf(ctx.rng(), zipf),
            },
        }
    }
}

/// Behaviour of a querying agent.
pub struct QuerierBehavior {
    client: Box<dyn DirectoryClient>,
    targets: Targets,
    selector: TargetSelector,
    start_after: SimDuration,
    interval: DurationDist,
    remaining: u64,
    metrics: Metrics,
    freshness: Freshness,
    next_token: u64,
    issued_at: HashMap<u64, SimTime>,
    query_timer: Option<TimerId>,
}

impl QuerierBehavior {
    /// Creates a querier that issues `count` locates over the population,
    /// starting `start_after` its creation, spaced by `interval`.
    ///
    /// # Panics
    ///
    /// Panics if the target population is empty.
    #[must_use]
    pub fn new(
        client: Box<dyn DirectoryClient>,
        targets: Targets,
        selector: TargetSelector,
        start_after: SimDuration,
        interval: DurationDist,
        count: u64,
        metrics: Metrics,
    ) -> Self {
        // A live roster may legitimately be empty at construction time
        // (agents register as the run starts); a fixed one may not.
        if let Targets::Fixed(v) = &targets {
            assert!(!v.is_empty(), "querier needs targets");
        }
        QuerierBehavior {
            client,
            targets,
            selector,
            start_after,
            interval,
            remaining: count,
            metrics,
            freshness: Freshness::Any,
            next_token: 0,
            issued_at: HashMap::new(),
            query_timer: None,
        }
    }

    /// Issues every locate under the given freshness requirement instead
    /// of the default [`Freshness::Any`] (the geo experiments' knob).
    #[must_use]
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    fn schedule_next(&mut self, ctx: &mut AgentCtx<'_>, delay: SimDuration) {
        if self.remaining > 0 {
            self.query_timer = Some(ctx.set_timer(delay));
        }
    }

    fn issue(&mut self, ctx: &mut AgentCtx<'_>) {
        self.remaining -= 1;
        let Some(target) = self.selector.pick(ctx, &self.targets) else {
            return; // roster momentarily empty under churn
        };
        let token = self.next_token;
        self.next_token += 1;
        self.issued_at.insert(token, ctx.now());
        self.metrics.record_issue(ctx.now());
        self.client.locate_with(ctx, target, token, self.freshness);
    }
}

impl Agent for QuerierBehavior {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        let delay = self.start_after;
        self.schedule_next(ctx, delay);
    }

    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, _lost_soft_state: bool) {
        // Pre-crash timers (pacing and any locate retries) are void;
        // locates that were in flight stay unanswered and count against
        // the completion ratio. Resume the query schedule.
        let gap = ctx.rng().sample(&self.interval);
        self.schedule_next(ctx, gap);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.query_timer == Some(timer) {
            self.query_timer = None;
            self.issue(ctx);
            let gap = ctx.rng().sample(&self.interval);
            self.schedule_next(ctx, gap);
            return;
        }
        self.handle_event(ctx, |client, ctx| client.on_timer(ctx, timer));
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        self.handle_event(ctx, |client, ctx| client.on_message(ctx, from, payload));
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        self.handle_event(ctx, |client, ctx| {
            client.on_delivery_failed(ctx, to, node, payload)
        });
    }
}

impl QuerierBehavior {
    fn handle_event(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        f: impl FnOnce(&mut dyn DirectoryClient, &mut AgentCtx<'_>) -> ClientEvent,
    ) {
        match f(self.client.as_mut(), ctx) {
            ClientEvent::Located {
                token,
                target,
                stale,
                age_ms,
                ..
            } => {
                if let Some(issued) = self.issued_at.remove(&token) {
                    self.metrics
                        .record_locate(issued, target, ctx.now() - issued);
                    self.metrics.record_answer_age(issued, stale, age_ms);
                }
            }
            ClientEvent::Failed { token, .. } => {
                if let Some(issued) = self.issued_at.remove(&token) {
                    self.metrics.record_failure(issued);
                }
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for QuerierBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerierBehavior")
            .field("targets", &self.targets.len())
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}
