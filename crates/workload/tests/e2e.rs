//! End-to-end tests: full scenarios against every scheme.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use agentrack_core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
};
use agentrack_workload::Scenario;

fn quick() -> Scenario {
    Scenario::new("e2e")
        .with_agents(40)
        .with_queries(60)
        .with_seconds(8.0, 4.0)
}

#[test]
fn hashed_scheme_locates_agents() {
    let mut scheme = HashedScheme::new(LocationConfig::default());
    let report = quick().run(&mut scheme);
    eprintln!("{report:#?}");
    assert_eq!(report.registrations, 40, "all TAgents register");
    assert!(report.locates_completed >= 58, "{report:#?}");
    assert_eq!(report.locate_failures, 0);
    assert!(report.mean_locate_ms > 0.0);
    assert!(report.moves > 100, "TAgents roam during the run");
}

#[test]
fn centralized_scheme_locates_agents() {
    let mut scheme = CentralizedScheme::new(LocationConfig::default());
    let report = quick().run(&mut scheme);
    assert_eq!(report.registrations, 40);
    assert!(report.locates_completed >= 58, "{report:#?}");
    assert_eq!(report.trackers, 1);
    assert_eq!(report.splits, 0);
}

#[test]
fn home_registry_scheme_locates_agents() {
    let mut scheme = HomeRegistryScheme::new(LocationConfig::default());
    let report = quick().run(&mut scheme);
    assert_eq!(report.registrations, 40);
    assert!(report.locates_completed >= 58, "{report:#?}");
    assert_eq!(report.trackers, 16, "one registry per node");
}

#[test]
fn forwarding_scheme_locates_agents() {
    let mut scheme = ForwardingScheme::new(LocationConfig::default());
    let report = quick().run(&mut scheme);
    assert_eq!(report.registrations, 40);
    // Forwarding chains race with movement; a small shortfall is expected,
    // outright failure is not.
    assert!(report.locates_completed >= 50, "{report:#?}");
    assert!(report.chain_hops > 0, "chains were walked");
}

#[test]
fn hashed_scheme_splits_under_load() {
    // 300 agents moving every 200 ms ⇒ 1500 updates/s: far beyond one
    // IAgent's T_max of 50/s, so the tree must grow.
    let scenario = Scenario::new("split-pressure")
        .with_agents(300)
        .with_residence_ms(200)
        .with_queries(100)
        .with_seconds(12.0, 4.0);
    let mut scheme = HashedScheme::new(LocationConfig::default());
    let report = scenario.run(&mut scheme);
    eprintln!("{report:#?}");
    assert!(report.splits >= 5, "tree must grow: {report:#?}");
    assert!(report.trackers > 4);
    assert!(report.locates_completed >= 95, "{report:#?}");
    assert!(
        report.records_handed_off > 0,
        "splits hand records to new IAgents"
    );
}

#[test]
fn hashed_scheme_merges_when_load_vanishes() {
    // Slow movers after a burst: splits first, merges later.
    let scenario = Scenario::new("merge-pressure")
        .with_agents(150)
        .with_residence_ms(100)
        .with_queries(0)
        .with_seconds(25.0, 0.0);
    // Agents stop generating load quickly relative to the run because the
    // measurement window is empty; rely on decaying rates. Use aggressive
    // thresholds to provoke both directions.
    let config = LocationConfig {
        merge_warmup: agentrack_sim::SimDuration::from_secs(2),
        ..LocationConfig::default().with_thresholds(30.0, 10.0)
    };
    let mut scheme = HashedScheme::new(config);
    let report = scenario.run(&mut scheme);
    eprintln!("{report:#?}");
    assert!(report.splits > 0);
    // Mobility stays constant here, so merges are not guaranteed — this
    // test asserts the system remains healthy under threshold churn.
    assert_eq!(report.locate_failures, 0);
}

#[test]
fn same_seed_same_report() {
    let scenario = quick();
    let run = || {
        let mut scheme = HashedScheme::new(LocationConfig::default());
        scenario.run(&mut scheme)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_still_complete() {
    for seed in [1u64, 7, 1234] {
        let mut scheme = HashedScheme::new(LocationConfig::default());
        let report = quick().with_seed(seed).run(&mut scheme);
        assert!(report.completion_ratio() > 0.95, "seed {seed}: {report:#?}");
    }
}
