//! Agent keys: the binary representation of a mobile agent's identifier.
//!
//! The paper's hash function `H` "takes as input the binary representation of
//! a mobile agent's id" and consumes some prefix of it. We model that binary
//! representation as a fixed-width 64-bit key, consumed most-significant bit
//! first. The mechanism is independent of any particular agent-naming scheme:
//! any platform identifier can be reduced to an [`AgentKey`] by hashing
//! (see [`AgentKey::from_name`]).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bits::Bits;

/// Width of an agent key in bits.
pub const KEY_BITS: usize = 64;

/// The binary representation of a mobile agent's identifier.
///
/// Bit 0 is the most-significant bit; the hash tree consumes bits in
/// increasing index order.
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::AgentKey;
///
/// let key = AgentKey::new(0b101 << 61);
/// assert!(key.bit(0));
/// assert!(!key.bit(1));
/// assert!(key.bit(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct AgentKey(u64);

impl AgentKey {
    /// Creates a key from its raw 64-bit value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        AgentKey(raw)
    }

    /// Derives a key from an arbitrary name by hashing.
    ///
    /// The mechanism must work for agent systems whose naming scheme carries
    /// no structure (one of the paper's stated advantages over Ajanta, whose
    /// names embed the creating registry). This uses an FNV-1a hash followed
    /// by a 64-bit finalizer so that *any* name distribution produces keys
    /// that are uniform in every bit — the property the hash tree's prefix
    /// partitioning relies on.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentrack_hashtree::AgentKey;
    ///
    /// let a = AgentKey::from_name("shopper-17");
    /// let b = AgentKey::from_name("shopper-18");
    /// assert_ne!(a, b);
    /// ```
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in name.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        AgentKey(finalize(h))
    }

    /// Derives a key from a numeric platform identifier by mixing its bits.
    ///
    /// Sequentially-assigned ids (0, 1, 2, …) differ only in their low bits;
    /// mixing spreads them uniformly over the prefix the hash tree inspects.
    #[must_use]
    pub const fn from_sequential(id: u64) -> Self {
        AgentKey(finalize(id))
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Returns bit `i` (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= KEY_BITS`.
    #[must_use]
    pub const fn bit(&self, i: usize) -> bool {
        assert!(i < KEY_BITS);
        (self.0 >> (63 - i)) & 1 == 1
    }

    /// Returns the first `n` bits of the key as a [`Bits`] value.
    ///
    /// # Panics
    ///
    /// Panics if `n > KEY_BITS`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Bits {
        Bits::from_raw(self.0, n)
    }
}

impl From<u64> for AgentKey {
    fn from(raw: u64) -> Self {
        AgentKey(raw)
    }
}

impl From<AgentKey> for u64 {
    fn from(key: AgentKey) -> u64 {
        key.0
    }
}

impl fmt::Display for AgentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for AgentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AgentKey({:016x})", self.0)
    }
}

/// SplitMix64 finalizer: a 64-bit bijective mixer with full avalanche.
const fn finalize(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_indexing_is_msb_first() {
        let key = AgentKey::new(1u64 << 63);
        assert!(key.bit(0));
        for i in 1..KEY_BITS {
            assert!(!key.bit(i));
        }
        let key = AgentKey::new(1);
        assert!(key.bit(63));
        assert!(!key.bit(0));
    }

    #[test]
    fn prefix_matches_bits() {
        let key = AgentKey::new(0b1011u64 << 60);
        assert_eq!(key.prefix(4).to_string(), "1011");
        assert_eq!(key.prefix(0).to_string(), "");
        for i in 0..16 {
            assert_eq!(key.prefix(16).get(i), Some(key.bit(i)));
        }
    }

    #[test]
    fn from_name_is_deterministic_and_spread() {
        assert_eq!(AgentKey::from_name("a"), AgentKey::from_name("a"));
        assert_ne!(AgentKey::from_name("a"), AgentKey::from_name("b"));

        // First-bit balance over a batch of realistic names: should be
        // roughly half zeros, half ones.
        let ones = (0..1000)
            .filter(|i| AgentKey::from_name(&format!("agent-{i}")).bit(0))
            .count();
        assert!((400..=600).contains(&ones), "first-bit skew: {ones}/1000");
    }

    #[test]
    fn from_sequential_mixes_low_entropy_ids() {
        // Sequential ids must not collide and must spread over the top bits.
        let ones = (0..1000u64)
            .filter(|&i| AgentKey::from_sequential(i).bit(0))
            .count();
        assert!((400..=600).contains(&ones), "first-bit skew: {ones}/1000");

        let mut keys: Vec<u64> = (0..1000u64)
            .map(|i| AgentKey::from_sequential(i).raw())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn conversions() {
        let key = AgentKey::from(42u64);
        assert_eq!(u64::from(key), 42);
        assert_eq!(key.raw(), 42);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(AgentKey::new(0xdead_beef).to_string(), "00000000deadbeef");
    }
}
