//! Edge labels and hyper-labels.
//!
//! Every edge of the hash tree carries a [`Label`]: a non-empty string of
//! bits whose *first* bit is the **valid bit**. The valid bit determines
//! whether the edge leads to the left (`0`) or right (`1`) child of its
//! source node; the remaining bits are *unused* bits that are skipped during
//! traversal but recorded so that later **complex splits** can promote them
//! back into valid bits.
//!
//! The concatenation of the labels on the path from the root to a node is the
//! node's [`HyperLabel`]. A key is *compatible* with a hyper-label iff, for
//! every label in it, the key bit at the position of that label's valid bit
//! equals the valid bit (paper §3, Figure 2).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::bits::{Bits, ParseBitsError};
use crate::key::AgentKey;

/// A non-empty edge label: a valid bit followed by zero or more unused bits.
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::Label;
///
/// let label: Label = "010".parse()?;
/// assert_eq!(label.valid_bit(), false);
/// assert_eq!(label.unused().to_string(), "10");
/// assert_eq!(label.len(), 3);
/// # Ok::<(), agentrack_hashtree::ParseLabelError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(Bits);

impl Label {
    /// Creates a label from its bits.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLabelError::Empty`] if `bits` is empty — a label must
    /// contain at least a valid bit.
    pub fn from_bits(bits: Bits) -> Result<Self, ParseLabelError> {
        if bits.is_empty() {
            Err(ParseLabelError::Empty)
        } else {
            Ok(Label(bits))
        }
    }

    /// Creates a single-bit label from a valid bit.
    #[must_use]
    pub const fn single(valid_bit: bool) -> Self {
        Label(Bits::single(valid_bit))
    }

    /// The valid bit: the first bit of the label.
    #[must_use]
    pub fn valid_bit(&self) -> bool {
        self.0.first()
    }

    /// The unused bits: everything after the valid bit.
    #[must_use]
    pub fn unused(&self) -> Bits {
        self.0.suffix_from(1)
    }

    /// Total number of bits (valid bit included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Labels are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if the label has unused bits (length > 1).
    ///
    /// Multi-bit labels are "the result of splitting and merging IAgents"
    /// (paper §3) and are where complex splits find room to rebalance.
    #[must_use]
    pub fn is_multi_bit(&self) -> bool {
        self.len() > 1
    }

    /// The underlying bits.
    #[must_use]
    pub fn bits(&self) -> Bits {
        self.0
    }

    /// Returns a label with `extra` bits appended after the existing bits.
    ///
    /// Used by simple splits: "the last label of the hyper-label of `A` is
    /// augmented" with the skipped-over bits (paper §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds [`crate::bits::MAX_BITS`].
    #[must_use]
    pub fn augmented(&self, extra: &Bits) -> Self {
        Label(self.0.concat(extra))
    }

    /// Returns the first `n` bits of the label as a shorter label.
    ///
    /// Used by complex splits, which truncate a multi-bit label at the
    /// promoted bit.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > self.len()`.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Self {
        assert!(n >= 1 && n <= self.len(), "Label::truncated out of range");
        Label(self.0.prefix(n))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label(\"{}\")", self.0)
    }
}

/// Error returned when parsing a [`Label`] or [`HyperLabel`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLabelError {
    /// A label must contain at least its valid bit.
    Empty,
    /// The bits could not be parsed.
    Bits(ParseBitsError),
}

impl fmt::Display for ParseLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLabelError::Empty => write!(f, "label must contain at least one bit"),
            ParseLabelError::Bits(e) => write!(f, "invalid label bits: {e}"),
        }
    }
}

impl std::error::Error for ParseLabelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseLabelError::Bits(e) => Some(e),
            ParseLabelError::Empty => None,
        }
    }
}

impl From<ParseBitsError> for ParseLabelError {
    fn from(e: ParseBitsError) -> Self {
        ParseLabelError::Bits(e)
    }
}

impl FromStr for Label {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bits: Bits = s.parse()?;
        Label::from_bits(bits)
    }
}

/// The concatenation of edge labels from the root to a node.
///
/// Rendered with `.` separating the labels, exactly as in the paper
/// ("hyper-label `10.0.110` " style). The root's hyper-label is empty.
///
/// A hyper-label may additionally carry a *prefix skip*: key bits consumed
/// before the first label, none of which constrain the key. A skip arises
/// when both children of the tree's root are merged — the surviving root
/// must serve the whole key space while every deeper bit position stays
/// put, so the old root-edge label's bits all become unconstrained. A skip
/// of `110` is rendered as `[110]`.
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::{AgentKey, HyperLabel};
///
/// let hl: HyperLabel = "1.010".parse()?;
/// // Valid bits sit at positions 0 and 1 of the key: `1` then `0`.
/// let compatible = AgentKey::new(0b10_11u64 << 60);
/// let incompatible = AgentKey::new(0b11_11u64 << 60);
/// assert!(hl.is_compatible(compatible));
/// assert!(!hl.is_compatible(incompatible));
/// # Ok::<(), agentrack_hashtree::ParseLabelError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HyperLabel {
    /// Unconstrained bits consumed before the first label.
    skip: Bits,
    /// Labels, outermost (root edge) first.
    labels: Vec<Label>,
}

impl HyperLabel {
    /// Creates the empty hyper-label (a freshly built tree's root).
    #[must_use]
    pub const fn root() -> Self {
        HyperLabel {
            skip: Bits::new(),
            labels: Vec::new(),
        }
    }

    /// Creates a hyper-label from a sequence of labels (no prefix skip).
    #[must_use]
    pub fn from_labels(labels: Vec<Label>) -> Self {
        HyperLabel {
            skip: Bits::new(),
            labels,
        }
    }

    /// The labels, outermost (root edge) first.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The prefix skip: unconstrained bits consumed before the first label.
    #[must_use]
    pub fn prefix_skip(&self) -> Bits {
        self.skip
    }

    /// Sets the prefix skip.
    pub fn set_prefix_skip(&mut self, skip: Bits) {
        self.skip = skip;
    }

    /// Number of labels (the prefix skip is not a label).
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when there are no labels and no prefix skip.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && self.skip.is_empty()
    }

    /// Total number of key bits consumed by a traversal ending at this node
    /// (skip, valid and unused bits alike).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.skip.len() + self.labels.iter().map(Label::len).sum::<usize>()
    }

    /// Appends a label.
    pub fn push(&mut self, label: Label) {
        self.labels.push(label);
    }

    /// The key-bit positions of each label's valid bit, in label order.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentrack_hashtree::HyperLabel;
    /// let hl: HyperLabel = "10.0.110".parse()?;
    /// assert_eq!(hl.valid_bit_positions(), vec![0, 2, 3]);
    /// # Ok::<(), agentrack_hashtree::ParseLabelError>(())
    /// ```
    #[must_use]
    pub fn valid_bit_positions(&self) -> Vec<usize> {
        let mut positions = Vec::with_capacity(self.labels.len());
        let mut cursor = self.skip.len();
        for label in &self.labels {
            positions.push(cursor);
            cursor += label.len();
        }
        positions
    }

    /// Tests whether a key's prefix is compatible with this hyper-label.
    ///
    /// Per the paper (§3): compatible iff the valid bit of each label equals
    /// the key bit at the position that valid bit occupies in the
    /// hyper-label. Unused bits (and the prefix skip) impose no constraint.
    #[must_use]
    pub fn is_compatible(&self, key: AgentKey) -> bool {
        let mut cursor = self.skip.len();
        for label in &self.labels {
            if key.bit(cursor) != label.valid_bit() {
                return false;
            }
            cursor += label.len();
        }
        true
    }

    /// Returns `true` if any label carries unused bits.
    #[must_use]
    pub fn has_multi_bit_label(&self) -> bool {
        self.labels.iter().any(Label::is_multi_bit)
    }

    /// Returns `true` if a complex split could find room here: there is a
    /// prefix skip or a multi-bit label.
    #[must_use]
    pub fn has_unused_bits(&self) -> bool {
        !self.skip.is_empty() || self.has_multi_bit_label()
    }

    /// Flattens the hyper-label into one bit string (losing label
    /// boundaries; the prefix skip comes first).
    #[must_use]
    pub fn to_bits(&self) -> Bits {
        let mut bits = self.skip;
        for label in &self.labels {
            bits = bits.concat(&label.bits());
        }
        bits
    }
}

impl FromIterator<Label> for HyperLabel {
    fn from_iter<T: IntoIterator<Item = Label>>(iter: T) -> Self {
        HyperLabel::from_labels(iter.into_iter().collect())
    }
}

impl fmt::Display for HyperLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        let mut wrote = false;
        if !self.skip.is_empty() {
            write!(f, "[{}]", self.skip)?;
            wrote = true;
        }
        for label in &self.labels {
            if wrote {
                f.write_str(".")?;
            }
            write!(f, "{label}")?;
            wrote = true;
        }
        Ok(())
    }
}

impl fmt::Debug for HyperLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HyperLabel(\"{self}\")")
    }
}

impl FromStr for HyperLabel {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s == "ε" {
            return Ok(HyperLabel::root());
        }
        let mut skip = Bits::new();
        let mut rest = s;
        if let Some(stripped) = s.strip_prefix('[') {
            let (skip_str, tail) = stripped
                .split_once(']')
                .ok_or(ParseLabelError::Bits(ParseBitsError::InvalidCharacter('[')))?;
            skip = skip_str.parse()?;
            rest = tail.strip_prefix('.').unwrap_or(tail);
        }
        let labels = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split('.').map(str::parse).collect::<Result<_, _>>()?
        };
        let mut hl = HyperLabel::from_labels(labels);
        hl.set_prefix_skip(skip);
        Ok(hl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hl(s: &str) -> HyperLabel {
        s.parse().unwrap()
    }

    #[test]
    fn label_parts() {
        let label: Label = "110".parse().unwrap();
        assert!(label.valid_bit());
        assert_eq!(label.unused().to_string(), "10");
        assert!(label.is_multi_bit());
        assert!(!Label::single(false).is_multi_bit());
    }

    #[test]
    fn label_rejects_empty() {
        assert_eq!("".parse::<Label>(), Err(ParseLabelError::Empty));
        assert_eq!(Label::from_bits(Bits::new()), Err(ParseLabelError::Empty));
    }

    #[test]
    fn label_augment_truncate() {
        let label: Label = "1".parse().unwrap();
        let grown = label.augmented(&"01".parse().unwrap());
        assert_eq!(grown.to_string(), "101");
        assert_eq!(grown.truncated(2).to_string(), "10");
        assert_eq!(grown.truncated(3), grown);
    }

    #[test]
    fn hyper_label_display_uses_dots() {
        assert_eq!(hl("10.0.110").to_string(), "10.0.110");
        assert_eq!(HyperLabel::root().to_string(), "ε");
        assert_eq!("ε".parse::<HyperLabel>().unwrap(), HyperLabel::root());
        assert_eq!("".parse::<HyperLabel>().unwrap(), HyperLabel::root());
    }

    #[test]
    fn bit_len_counts_all_bits() {
        assert_eq!(hl("10.0.110").bit_len(), 6);
        assert_eq!(HyperLabel::root().bit_len(), 0);
    }

    /// The paper's Figure 2 describes compatibility: a prefix is compatible
    /// with a hyper-label iff each valid bit matches the key bit at the valid
    /// bit's position. We reproduce the structure of that example: hyper-label
    /// `10.0.110` has valid bits at positions 0 (`1`), 2 (`0`), 3 (`1`);
    /// positions 1, 4, 5 are unused and unconstrained.
    #[test]
    fn paper_figure2_compatibility() {
        let h = hl("10.0.110");
        assert_eq!(h.valid_bit_positions(), vec![0, 2, 3]);
        // All 8 assignments of the 3 unconstrained positions are compatible.
        for unused in 0u64..8 {
            let b1 = (unused >> 2) & 1;
            let b4 = (unused >> 1) & 1;
            let b5 = unused & 1;
            let raw = ((1 << 63) | (b1 << 62)) | (1 << 60) | (b4 << 59) | (b5 << 58);
            assert!(h.is_compatible(AgentKey::new(raw)), "unused={unused:03b}");
        }
        // Flipping any valid bit breaks compatibility.
        assert!(!h.is_compatible(AgentKey::new(0b0000_0000u64 << 56)));
        assert!(!h.is_compatible(AgentKey::new(0b1010_0000u64 << 56))); // pos2 = 1
        assert!(!h.is_compatible(AgentKey::new(0b1000_0000u64 << 56))); // pos3 = 0
    }

    #[test]
    fn root_is_compatible_with_everything() {
        for raw in [0, 1, u64::MAX, 0xdead_beef] {
            assert!(HyperLabel::root().is_compatible(AgentKey::new(raw)));
        }
    }

    #[test]
    fn multi_bit_detection() {
        assert!(hl("10.0").has_multi_bit_label());
        assert!(!hl("1.0.1").has_multi_bit_label());
    }

    #[test]
    fn to_bits_flattens() {
        assert_eq!(hl("10.0.110").to_bits().to_string(), "100110");
    }

    #[test]
    fn prefix_skip_shifts_positions_without_constraining() {
        let mut h = hl("1.0");
        h.set_prefix_skip("01".parse().unwrap());
        assert_eq!(h.to_string(), "[01].1.0");
        assert_eq!(h.bit_len(), 4);
        assert_eq!(h.valid_bit_positions(), vec![2, 3]);
        // Bits 0-1 are unconstrained; bits 2-3 must be `10`.
        for skip in 0u64..4 {
            let raw = (skip << 62) | (0b10u64 << 60);
            assert!(h.is_compatible(AgentKey::new(raw)), "skip={skip:02b}");
            let bad = (skip << 62) | (0b01u64 << 60);
            assert!(!h.is_compatible(AgentKey::new(bad)));
        }
        assert!(h.has_unused_bits());
        assert!(!h.has_multi_bit_label());
    }

    #[test]
    fn skip_round_trips_through_display() {
        for s in ["[01].1.0", "[110]", "ε", "1.010", "[0].1"] {
            let h: HyperLabel = s.parse().unwrap();
            assert_eq!(h.to_string(), s);
        }
    }

    #[test]
    fn skip_only_hyper_label_is_compatible_with_everything() {
        let h: HyperLabel = "[101]".parse().unwrap();
        for raw in [0, u64::MAX, 0xdead_beef] {
            assert!(h.is_compatible(AgentKey::new(raw)));
        }
        assert!(!h.is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn from_iterator() {
        let h: HyperLabel = vec![Label::single(true), Label::single(false)]
            .into_iter()
            .collect();
        assert_eq!(h.to_string(), "1.0");
    }
}
