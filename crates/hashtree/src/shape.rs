//! Tree shape: rendering and structural statistics.
//!
//! The paper's argument for complex splits is *shape*: reusing unused
//! label bits "would result in more balanced hash trees or in other words
//! in using shorter prefixes". This module makes that shape visible — an
//! ASCII rendering for docs/debugging and a [`TreeShape`] summary for the
//! split-strategy ablation.

use std::fmt::Write as _;

use crate::tree::{HashTree, NodeId};

/// Structural summary of a hash tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeShape {
    /// Number of IAgents (leaves).
    pub leaves: usize,
    /// Longest root-to-leaf path, in edges.
    pub height: usize,
    /// Shortest root-to-leaf path, in edges.
    pub min_depth: usize,
    /// Mean consumed-prefix length over leaves, in key bits.
    pub mean_prefix_bits: f64,
    /// Total unused (recorded-but-skipped) bits across all labels — the
    /// room complex splits can reuse.
    pub unused_bits: usize,
}

impl HashTree {
    /// Computes the tree's structural summary.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentrack_hashtree::{HashTree, IAgentId};
    ///
    /// let tree = HashTree::new(IAgentId::new(0));
    /// let shape = tree.shape();
    /// assert_eq!(shape.leaves, 1);
    /// assert_eq!(shape.height, 0);
    /// assert_eq!(shape.mean_prefix_bits, 0.0);
    /// ```
    #[must_use]
    pub fn shape(&self) -> TreeShape {
        let mut leaves = 0usize;
        let mut height = 0usize;
        let mut min_depth = usize::MAX;
        let mut prefix_total = 0usize;
        let mut unused_bits = 0usize;

        let mut stack: Vec<(NodeId, usize, usize)> = vec![(self.root_id(), 0, 0)];
        while let Some((id, depth, consumed)) = stack.pop() {
            let (leaf, unused, children) = self.node_view(id);
            let own = unused.len() + usize::from(depth > 0);
            unused_bits += unused.len();
            let consumed = consumed + own;
            match children {
                None => {
                    debug_assert!(leaf.is_some());
                    leaves += 1;
                    height = height.max(depth);
                    min_depth = min_depth.min(depth);
                    prefix_total += consumed;
                }
                Some([l, r]) => {
                    stack.push((l, depth + 1, consumed));
                    stack.push((r, depth + 1, consumed));
                }
            }
        }
        TreeShape {
            leaves,
            height,
            min_depth: if min_depth == usize::MAX {
                0
            } else {
                min_depth
            },
            mean_prefix_bits: prefix_total as f64 / leaves.max(1) as f64,
            unused_bits,
        }
    }

    /// Renders the tree as an ASCII diagram, labels on the edges, IAgents
    /// at the leaves.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentrack_hashtree::{HashTree, IAgentId, Side, SplitKind};
    ///
    /// let mut tree = HashTree::new(IAgentId::new(0));
    /// let cand = tree.split_candidates(IAgentId::new(0))?
    ///     .into_iter()
    ///     .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
    ///     .unwrap();
    /// tree.apply_split(&cand, IAgentId::new(1), Side::Right)?;
    /// let art = tree.render_ascii();
    /// assert!(art.contains("IA0"));
    /// assert!(art.contains("IA1"));
    /// # Ok::<(), agentrack_hashtree::TreeError>(())
    /// ```
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root_id(), "", "", "", &mut out);
        out
    }

    fn render_node(&self, id: NodeId, lead: &str, edge: &str, cont: &str, out: &mut String) {
        let (leaf, unused, children) = self.node_view(id);
        let label_suffix = if unused.is_empty() {
            String::new()
        } else {
            format!("({unused})")
        };
        match (leaf, children) {
            (Some(ia), _) => {
                let _ = writeln!(out, "{lead}{edge}{label_suffix} {ia}");
            }
            (None, Some([l, r])) => {
                let _ = writeln!(out, "{lead}{edge}{label_suffix}·");
                let child_lead = format!("{lead}{cont}");
                self.render_node(l, &child_lead, "├─0─", "│   ", out);
                self.render_node(r, &child_lead, "└─1─", "    ", out);
            }
            (None, None) => unreachable!("node is leaf or internal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{IAgentId, Side, SplitKind};
    use crate::AgentKey;

    fn grown_tree() -> HashTree {
        let mut tree = HashTree::new(IAgentId::new(0));
        for (next, raw) in [0u64, u64::MAX, 1 << 62, 3 << 62].into_iter().enumerate() {
            let target = tree.lookup(AgentKey::new(raw));
            let cand = tree
                .split_candidates(target)
                .unwrap()
                .into_iter()
                .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
                .unwrap();
            tree.apply_split(&cand, IAgentId::new(next as u64 + 1), Side::Right)
                .unwrap();
        }
        tree
    }

    #[test]
    fn shape_of_a_fresh_tree() {
        let shape = HashTree::new(IAgentId::new(9)).shape();
        assert_eq!(
            shape,
            TreeShape {
                leaves: 1,
                height: 0,
                min_depth: 0,
                mean_prefix_bits: 0.0,
                unused_bits: 0
            }
        );
    }

    #[test]
    fn shape_tracks_growth() {
        let tree = grown_tree();
        let shape = tree.shape();
        assert_eq!(shape.leaves, 5);
        assert_eq!(shape.height, tree.height());
        assert!(shape.min_depth >= 1);
        assert!(shape.mean_prefix_bits >= 1.0);
    }

    #[test]
    fn merges_create_unused_bits_that_shape_counts() {
        let mut tree = grown_tree();
        let victim = tree.iagents().max().unwrap();
        tree.apply_merge(victim).unwrap();
        assert!(tree.shape().unused_bits > 0);
    }

    #[test]
    fn ascii_rendering_contains_every_iagent() {
        let tree = grown_tree();
        let art = tree.render_ascii();
        for ia in tree.iagents() {
            assert!(art.contains(&ia.to_string()), "missing {ia} in:\n{art}");
        }
        // Edges show both directions.
        assert!(art.contains("├─0─"));
        assert!(art.contains("└─1─"));
    }

    #[test]
    fn ascii_rendering_shows_unused_bits() {
        let mut tree = grown_tree();
        let victim = tree.iagents().max().unwrap();
        tree.apply_merge(victim).unwrap();
        let art = tree.render_ascii();
        assert!(art.contains('('), "unused bits should be annotated:\n{art}");
    }
}
