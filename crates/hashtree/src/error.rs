//! Error types for hash-tree operations.

use std::fmt;

use crate::tree::IAgentId;

/// Error returned by structural operations on a
/// [`HashTree`](crate::HashTree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The named IAgent does not own any leaf of this tree.
    UnknownIAgent(IAgentId),
    /// An IAgent with this id already owns a leaf; leaf owners are unique.
    DuplicateIAgent(IAgentId),
    /// The operation requires more key bits than a key has; the tree cannot
    /// branch on bit positions at or beyond the key width.
    DepthExceeded {
        /// The out-of-range key-bit position the operation needed.
        key_bit: usize,
    },
    /// The tree has a single IAgent left; it cannot be merged away.
    LastIAgent,
    /// A split candidate no longer describes this tree (it was produced for
    /// an older version, or its parameters are inconsistent).
    StaleCandidate(String),
    /// A requested split parameter is invalid (for example `m == 0`).
    InvalidParameter(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownIAgent(id) => write!(f, "unknown IAgent {id}"),
            TreeError::DuplicateIAgent(id) => write!(f, "IAgent {id} already owns a leaf"),
            TreeError::DepthExceeded { key_bit } => {
                write!(
                    f,
                    "split would branch on key bit {key_bit}, beyond the key width"
                )
            }
            TreeError::LastIAgent => write!(f, "cannot merge the last remaining IAgent"),
            TreeError::StaleCandidate(why) => write!(f, "stale split candidate: {why}"),
            TreeError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for TreeError {}
