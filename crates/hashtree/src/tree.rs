//! The dynamic (extendible) hash tree mapping agent keys to IAgents.
//!
//! # Structure
//!
//! The hash function `H` is represented as a binary tree (paper §3). Each
//! leaf corresponds to one IAgent; the IAgent serves every agent whose key is
//! *compatible* with the leaf's hyper-label. Each edge carries a label whose
//! first bit — the **valid bit** — selects the left (`0`) or right (`1`)
//! child; the remaining **unused** bits are skipped during traversal.
//!
//! # Representation
//!
//! Two observations shape the in-memory representation:
//!
//! 1. A valid bit always equals the side of the child it leads to, so it
//!    never needs to be stored: each node records only the *unused* bits of
//!    its incoming edge label.
//! 2. Merging both children of the root leaves the surviving subtree with a
//!    label whose valid bit must stop constraining keys (the new root serves
//!    the whole key space) while every deeper position stays put. The root
//!    therefore carries a *skip prefix*: key bits consumed before the first
//!    branching decision, all unconstrained. A freshly built tree has an
//!    empty skip; merges at the root grow it, and complex splits can later
//!    promote its bits back into branching decisions.
//!
//! # Operations
//!
//! * [`HashTree::lookup`] — the paper's traversal procedure: follow one key
//!   bit per node, skipping a label's unused bits.
//! * [`HashTree::split_candidates`] — enumerate the split points the paper's
//!   rehashing procedure considers, in the paper's order: complex candidates
//!   (left-most multi-bit label first, first unused bit first), then simple
//!   candidates (`m = 1, 2, …`).
//! * [`HashTree::apply_split`] / [`HashTree::apply_merge`] — perform the
//!   structural change, reporting which IAgents must re-examine the agents
//!   they serve ("the splitting and merging process should affect the
//!   mapping of only the mobile agents and the IAgents that are involved").

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bits::Bits;
use crate::error::TreeError;
use crate::key::{AgentKey, KEY_BITS};
use crate::label::{HyperLabel, Label};

/// Identifier of an Information Agent (IAgent), the owner of one hash-tree
/// leaf.
///
/// Displayed as `IA<n>`, following the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct IAgentId(pub u64);

impl IAgentId {
    /// Creates an IAgent id from its numeric value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        IAgentId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl From<u64> for IAgentId {
    fn from(raw: u64) -> Self {
        IAgentId(raw)
    }
}

impl fmt::Display for IAgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IA{}", self.0)
    }
}

impl fmt::Debug for IAgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IA{}", self.0)
    }
}

/// Which child of an internal node an edge leads to.
///
/// The valid bit of an edge label equals the side of the child it leads to:
/// `Left` ⇔ `0`, `Right` ⇔ `1` (paper §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The `0` side.
    Left,
    /// The `1` side.
    Right,
}

impl Side {
    /// The valid-bit value of an edge leading to this side.
    #[must_use]
    pub const fn bit(self) -> bool {
        matches!(self, Side::Right)
    }

    /// The side selected by a key bit.
    #[must_use]
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            Side::Right
        } else {
            Side::Left
        }
    }

    /// The opposite side.
    #[must_use]
    pub const fn opposite(self) -> Self {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    const fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

impl fmt::Debug for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "Left(0)",
            Side::Right => "Right(1)",
        })
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "left",
            Side::Right => "right",
        })
    }
}

/// Index of a node in the tree's arena. Opaque; stable only until the next
/// structural change.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct NodeData {
    /// Parent node and which side of it this node hangs on; `None` for the
    /// root.
    parent: Option<(NodeId, Side)>,
    /// Unused bits of the incoming edge label (after the implied valid
    /// bit). For the root this is the skip prefix.
    unused: Bits,
    kind: NodeKind,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum NodeKind {
    Leaf(IAgentId),
    Internal { children: [NodeId; 2] },
}

/// How a split partitions the key space (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Simple split: branch on the `m`-th key bit past the bits the leaf's
    /// hyper-label already consumes, skipping the `m - 1` bits before it.
    Simple {
        /// The 1-based index of the extra bit to branch on.
        m: usize,
    },
    /// Complex split: promote an unused bit of an edge label on the leaf's
    /// root path into a branching decision.
    Complex {
        /// The node at the child end of the edge whose label holds the bit
        /// (the root itself when promoting a skip-prefix bit).
        edge_node: NodeId,
        /// Index of the bit within that label's unused bits (0 = first
        /// unused bit, i.e. "the first bit after the valid bit").
        bit_offset: usize,
    },
}

/// A possible split point for an overloaded IAgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitCandidate {
    /// The leaf (IAgent) being split.
    pub iagent: IAgentId,
    /// Simple or complex, and where.
    pub kind: SplitKind,
    /// The key-bit position the split partitions agents on. The load planner
    /// evaluates evenness by testing this bit of each served agent's key.
    pub key_bit: usize,
    /// The tree generation this candidate was computed against; any
    /// structural change invalidates it (arena slots are recycled, so a
    /// stale `NodeId` could otherwise point at an unrelated node).
    pub generation: u64,
}

/// Result of [`HashTree::apply_split`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitApplied {
    /// The IAgent that was split.
    pub split_iagent: IAgentId,
    /// The newly created IAgent.
    pub new_iagent: IAgentId,
    /// The key bit the partition branches on.
    pub key_bit: usize,
    /// The side (hence valid-bit value) assigned to the new IAgent's leaf.
    pub new_side: Side,
    /// IAgents that must re-examine the agents they serve: agents whose key
    /// now maps to the new IAgent have to be handed over. For a simple split
    /// this is just the split IAgent; for a complex split it is every IAgent
    /// in the subtree under the re-labelled edge.
    pub affected: Vec<IAgentId>,
}

/// How a merge folded a leaf away (paper §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeKind {
    /// The sibling was a leaf: the merged IAgent's load goes to that one
    /// sibling IAgent.
    Simple,
    /// The sibling was an internal node: the load is distributed over the
    /// IAgents of the sibling's subtree.
    Complex,
}

/// Result of [`HashTree::apply_merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeApplied {
    /// The IAgent whose leaf was removed.
    pub removed: IAgentId,
    /// Simple (sibling was a leaf) or complex (sibling was a subtree).
    pub kind: MergeKind,
    /// The IAgents that absorb the removed IAgent's agents. Exactly one for
    /// a simple merge.
    pub absorbers: Vec<IAgentId>,
}

/// The key-space region a rehash operation can remap, expressed as a
/// prefix constraint: the set of keys that agree with `value` on every bit
/// selected by `mask` (bit positions count from the most significant end,
/// matching [`AgentKey::bit`]).
///
/// Regions are how the HAgent's lease table decides whether two rehashes
/// are independent: a split or merge restructures only nodes inside its
/// region, so any set of pairwise-disjoint regions can be rehashed
/// concurrently without one invalidating another's plan. Two regions
/// *overlap* when some key satisfies both constraints — which happens
/// exactly when they agree on every commonly-constrained bit. An ancestor
/// region (fewer constrained bits) therefore overlaps all of its
/// descendants, which is what serialises a complex split at a shallow edge
/// against every operation underneath it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixRegion {
    /// Bit positions constrained by this region (MSB-first, like keys).
    mask: u64,
    /// Required values at the constrained positions.
    value: u64,
}

impl PrefixRegion {
    /// The unconstrained region: the whole key space. Overlaps everything.
    pub const EVERYTHING: PrefixRegion = PrefixRegion { mask: 0, value: 0 };

    /// The region of keys compatible with a hyper-label: each label's valid
    /// bit constrains its position, unused bits (and the prefix skip)
    /// constrain nothing.
    #[must_use]
    pub fn from_hyper_label(hl: &HyperLabel) -> Self {
        let mut mask = 0u64;
        let mut value = 0u64;
        for (pos, label) in hl.valid_bit_positions().iter().zip(hl.labels()) {
            let bit = 1u64 << (KEY_BITS - 1 - pos);
            mask |= bit;
            if label.valid_bit() {
                value |= bit;
            }
        }
        PrefixRegion { mask, value }
    }

    /// `true` when some key lies in both regions: the regions agree on
    /// every bit they both constrain. Disjoint regions differ on at least
    /// one commonly-constrained bit, so no key can satisfy both.
    #[must_use]
    pub fn overlaps(&self, other: &PrefixRegion) -> bool {
        (self.value ^ other.value) & self.mask & other.mask == 0
    }

    /// Number of constrained bit positions (0 for [`Self::EVERYTHING`]).
    #[must_use]
    pub fn constrained_bits(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// The dynamic hash tree: the paper's representation of the extendible hash
/// function `H` mapping agent ids to IAgents.
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::{AgentKey, HashTree, IAgentId, Side, SplitKind};
///
/// // A new tree maps every key to the single initial IAgent.
/// let mut tree = HashTree::new(IAgentId::new(0));
/// assert_eq!(tree.lookup(AgentKey::new(42)), IAgentId::new(0));
///
/// // Split it on the first key bit: keys starting 0 stay, keys starting 1
/// // move to the new IAgent.
/// let cand = tree
///     .split_candidates(IAgentId::new(0))?
///     .into_iter()
///     .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
///     .unwrap();
/// tree.apply_split(&cand, IAgentId::new(1), Side::Right)?;
/// assert_eq!(tree.lookup(AgentKey::new(0)), IAgentId::new(0));
/// assert_eq!(tree.lookup(AgentKey::new(u64::MAX)), IAgentId::new(1));
/// # Ok::<(), agentrack_hashtree::TreeError>(())
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct HashTree {
    nodes: Vec<Option<NodeData>>,
    free: Vec<NodeId>,
    root: NodeId,
    /// IAgent → leaf index; every leaf appears exactly once.
    leaves: HashMap<IAgentId, NodeId>,
    /// Bumped by every structural change; stamps split candidates.
    generation: u64,
}

impl HashTree {
    /// Creates a tree with a single leaf: one IAgent serving the whole key
    /// space.
    #[must_use]
    pub fn new(initial: IAgentId) -> Self {
        let mut leaves = HashMap::new();
        leaves.insert(initial, NodeId(0));
        HashTree {
            nodes: vec![Some(NodeData {
                parent: None,
                unused: Bits::new(),
                kind: NodeKind::Leaf(initial),
            })],
            free: Vec::new(),
            root: NodeId(0),
            leaves,
            generation: 0,
        }
    }

    /// The structural generation: bumped by every split and merge. A
    /// [`SplitCandidate`] is only valid against the generation it was
    /// computed from.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of IAgents (leaves).
    #[must_use]
    pub fn iagent_count(&self) -> usize {
        self.leaves.len()
    }

    /// Returns `true` if `iagent` owns a leaf of this tree.
    #[must_use]
    pub fn contains(&self, iagent: IAgentId) -> bool {
        self.leaves.contains_key(&iagent)
    }

    /// Iterates over all IAgents, in unspecified order.
    pub fn iagents(&self) -> impl Iterator<Item = IAgentId> + '_ {
        self.leaves.keys().copied()
    }

    /// The paper's lookup procedure: walk from the root, branching on one
    /// key bit per internal node and skipping each label's unused bits.
    ///
    /// Total mapping: every key maps to exactly one IAgent.
    #[must_use]
    pub fn lookup(&self, key: AgentKey) -> IAgentId {
        match self.node(self.leaf_node_for_key(key)).kind {
            NodeKind::Leaf(iagent) => iagent,
            NodeKind::Internal { .. } => unreachable!("leaf_node_for_key returned internal node"),
        }
    }

    /// The hyper-label of the leaf owned by `iagent`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownIAgent`] if `iagent` owns no leaf.
    pub fn hyper_label(&self, iagent: IAgentId) -> Result<HyperLabel, TreeError> {
        let leaf = self.leaf_of(iagent)?;
        Ok(self.hyper_label_of_node(leaf))
    }

    /// Number of key bits a traversal ending at `iagent`'s leaf consumes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownIAgent`] if `iagent` owns no leaf.
    pub fn consumed_bits(&self, iagent: IAgentId) -> Result<usize, TreeError> {
        let leaf = self.leaf_of(iagent)?;
        Ok(self.consumed_bits_of_node(leaf))
    }

    /// The most key bits any traversal consumes: the maximum of
    /// [`consumed_bits`](Self::consumed_bits) over all leaves. Unlike
    /// [`height`](Self::height) (which counts edges) this counts *bits*,
    /// including each label's unused bits and the root's skip prefix — an
    /// upper bound on the depth a compiled directory could need.
    #[must_use]
    pub fn max_consumed_bits(&self) -> usize {
        self.leaves
            .values()
            .map(|&leaf| self.consumed_bits_of_node(leaf))
            .max()
            .unwrap_or(0)
    }

    /// Height of the tree: number of edges on the longest root-to-leaf path.
    #[must_use]
    pub fn height(&self) -> usize {
        self.leaves
            .values()
            .map(|&leaf| {
                let mut h = 0;
                let mut node = leaf;
                while let Some((parent, _)) = self.node(node).parent {
                    h += 1;
                    node = parent;
                }
                h
            })
            .max()
            .unwrap_or(0)
    }

    /// Enumerates split candidates for an overloaded IAgent, in the order
    /// the paper prescribes (§4.1):
    ///
    /// 1. **Complex** candidates — for each multi-bit label in the leaf's
    ///    hyper-label from left (root) to right, each unused bit from first
    ///    to last (the root's skip prefix counts, all of its bits being
    ///    unused);
    /// 2. **Simple** candidates — `m = 1, 2, …` up to the key width.
    ///
    /// The caller (the HAgent's planner) evaluates each candidate's load
    /// partition and applies the first acceptable one.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownIAgent`] if `iagent` owns no leaf.
    pub fn split_candidates(&self, iagent: IAgentId) -> Result<Vec<SplitCandidate>, TreeError> {
        let leaf = self.leaf_of(iagent)?;
        let mut candidates = Vec::new();

        // Complex candidates: walk the root path top-down.
        let mut path = Vec::new();
        let mut node = leaf;
        loop {
            path.push(node);
            match self.node(node).parent {
                Some((parent, _)) => node = parent,
                None => break,
            }
        }
        path.reverse(); // root first

        let mut cursor = 0;
        for &n in &path {
            let data = self.node(n);
            let is_root = data.parent.is_none();
            // The incoming label occupies [cursor, cursor + label_len); its
            // unused bits start one past the valid bit (or at the start, for
            // the root skip which has no valid bit).
            let unused_start = if is_root { cursor } else { cursor + 1 };
            for j in 0..data.unused.len() {
                candidates.push(SplitCandidate {
                    iagent,
                    kind: SplitKind::Complex {
                        edge_node: n,
                        bit_offset: j,
                    },
                    key_bit: unused_start + j,
                    generation: self.generation,
                });
            }
            cursor = unused_start + data.unused.len();
        }

        // Simple candidates: m-th extra bit past the consumed prefix.
        let consumed = cursor;
        debug_assert_eq!(consumed, self.consumed_bits_of_node(leaf));
        for m in 1..=(KEY_BITS.saturating_sub(consumed)) {
            candidates.push(SplitCandidate {
                iagent,
                kind: SplitKind::Simple { m },
                key_bit: consumed + m - 1,
                generation: self.generation,
            });
        }
        Ok(candidates)
    }

    /// The key-space region a split would remap: for a simple split, the
    /// keys compatible with the leaf's hyper-label; for a complex split,
    /// the keys routed through the candidate's edge (the whole subtree
    /// under it re-partitions on the promoted bit).
    ///
    /// The HAgent's lease table admits a rehash only when its region is
    /// disjoint from every in-flight lease: operations inside disjoint
    /// regions touch disjoint node sets and never invalidate each other.
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownIAgent`] — the candidate's IAgent owns no leaf.
    /// * [`TreeError::StaleCandidate`] — the candidate was computed against
    ///   an older generation (its `edge_node` may dangle).
    pub fn split_region(&self, candidate: &SplitCandidate) -> Result<PrefixRegion, TreeError> {
        if candidate.generation != self.generation {
            return Err(TreeError::StaleCandidate(format!(
                "candidate from generation {}, tree at {}",
                candidate.generation, self.generation
            )));
        }
        let leaf = self.leaf_of(candidate.iagent)?;
        let node = match candidate.kind {
            SplitKind::Simple { .. } => leaf,
            SplitKind::Complex { edge_node, .. } => edge_node,
        };
        Ok(PrefixRegion::from_hyper_label(
            &self.hyper_label_of_node(node),
        ))
    }

    /// The key-space region a merge of `iagent` would remap: the keys
    /// routed through its parent node (the merged leaf's keys redistribute
    /// over the sibling subtree, whose labels all shift).
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownIAgent`] — `iagent` owns no leaf.
    /// * [`TreeError::LastIAgent`] — the tree has only one leaf.
    pub fn merge_region(&self, iagent: IAgentId) -> Result<PrefixRegion, TreeError> {
        let leaf = self.leaf_of(iagent)?;
        match self.node(leaf).parent {
            Some((parent, _)) => Ok(PrefixRegion::from_hyper_label(
                &self.hyper_label_of_node(parent),
            )),
            None => Err(TreeError::LastIAgent),
        }
    }

    /// Re-derives a split candidate against the *current* generation by its
    /// partitioning key bit.
    ///
    /// A lease holder plans its split at grant time, but disjoint rehashes
    /// may commit (and bump the generation) before it reports back. The key
    /// bit survives those commits — no node on the leased leaf's root path
    /// can change while operations are confined to disjoint regions — and
    /// it uniquely identifies a candidate: complex key bits are unused-bit
    /// positions below the leaf's consumed prefix, simple key bits lie at
    /// or past it, and each set enumerates distinct positions.
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownIAgent`] — `iagent` owns no leaf.
    /// * [`TreeError::StaleCandidate`] — no candidate partitions on
    ///   `key_bit` any more (an overlapping rehash slipped through).
    pub fn refreshed_candidate(
        &self,
        iagent: IAgentId,
        key_bit: usize,
    ) -> Result<SplitCandidate, TreeError> {
        self.split_candidates(iagent)?
            .into_iter()
            .find(|c| c.key_bit == key_bit)
            .ok_or_else(|| {
                TreeError::StaleCandidate(format!(
                    "no split candidate for {iagent} partitions on key bit {key_bit}"
                ))
            })
    }

    /// Applies a split: the leaf of `candidate.iagent` (for a simple split)
    /// or the subtree under the candidate's edge (for a complex split) is
    /// partitioned on `candidate.key_bit`; keys whose bit equals
    /// `new_side.bit()` map to the new IAgent `new_iagent`.
    ///
    /// Only the mapping of keys inside the affected region changes; the
    /// returned [`SplitApplied::affected`] lists the IAgents that must
    /// re-examine their served agents.
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownIAgent`] — the candidate's IAgent owns no leaf.
    /// * [`TreeError::DuplicateIAgent`] — `new_iagent` already owns a leaf.
    /// * [`TreeError::DepthExceeded`] — a simple split would branch past the
    ///   key width.
    /// * [`TreeError::InvalidParameter`] / [`TreeError::StaleCandidate`] —
    ///   the candidate does not describe this tree.
    pub fn apply_split(
        &mut self,
        candidate: &SplitCandidate,
        new_iagent: IAgentId,
        new_side: Side,
    ) -> Result<SplitApplied, TreeError> {
        if self.contains(new_iagent) {
            return Err(TreeError::DuplicateIAgent(new_iagent));
        }
        if candidate.generation != self.generation {
            return Err(TreeError::StaleCandidate(format!(
                "candidate from generation {}, tree at {}",
                candidate.generation, self.generation
            )));
        }
        let leaf = self.leaf_of(candidate.iagent)?;
        let applied = match candidate.kind {
            SplitKind::Simple { m } => self.split_simple(leaf, m, new_iagent, new_side),
            SplitKind::Complex {
                edge_node,
                bit_offset,
            } => self.split_complex(leaf, edge_node, bit_offset, new_iagent, new_side),
        }?;
        self.generation += 1;
        Ok(applied)
    }

    /// Merges the leaf of `iagent` away. If its sibling is a leaf this is a
    /// *simple merge* (the sibling absorbs everything); if the sibling is an
    /// internal node it is a *complex merge* (the sibling's subtree leaves
    /// absorb the agents according to their hyper-labels).
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownIAgent`] — `iagent` owns no leaf.
    /// * [`TreeError::LastIAgent`] — the tree has only one leaf.
    pub fn apply_merge(&mut self, iagent: IAgentId) -> Result<MergeApplied, TreeError> {
        let leaf = self.leaf_of(iagent)?;
        let Some((parent, side)) = self.node(leaf).parent else {
            return Err(TreeError::LastIAgent);
        };
        let sibling = self.child(parent, side.opposite());

        // The surviving node keeps its subtree; its incoming label becomes
        // parent_label ++ sibling_label with the sibling's old valid bit
        // demoted to an unused bit (positions are preserved for everything
        // under the sibling).
        let parent_unused = self.node(parent).unused;
        let sibling_unused = self.node(sibling).unused;
        let merged_unused = parent_unused
            .concat(&Bits::single(side.opposite().bit()))
            .concat(&sibling_unused);

        let grand = self.node(parent).parent;
        {
            let s = self.node_mut(sibling);
            s.parent = grand;
            s.unused = merged_unused;
        }
        match grand {
            Some((g, gside)) => self.set_child(g, gside, sibling),
            None => self.root = sibling,
        }

        self.release(leaf);
        self.release(parent);
        self.leaves.remove(&iagent);

        let absorbers = self.leaf_iagents_under(sibling);
        let kind = match self.node(sibling).kind {
            NodeKind::Leaf(_) => MergeKind::Simple,
            NodeKind::Internal { .. } => MergeKind::Complex,
        };
        debug_assert!(
            kind == MergeKind::Complex || absorbers.len() == 1,
            "simple merge must have exactly one absorber"
        );
        self.generation += 1;
        Ok(MergeApplied {
            removed: iagent,
            kind,
            absorbers,
        })
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation found.
    ///
    /// Intended for tests and debug assertions; the public mutation methods
    /// preserve all of these invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_leaves = 0usize;
        let mut stack = vec![(self.root, 0usize)];
        let mut visited = 0usize;
        while let Some((id, consumed)) = stack.pop() {
            visited += 1;
            let node = self
                .nodes
                .get(id.0 as usize)
                .and_then(Option::as_ref)
                .ok_or_else(|| format!("{id:?} referenced but not allocated"))?;
            let consumed = consumed + node.unused.len() + usize::from(node.parent.is_some());
            if consumed > KEY_BITS {
                return Err(format!("{id:?} consumes {consumed} bits > {KEY_BITS}"));
            }
            match &node.kind {
                NodeKind::Leaf(iagent) => {
                    seen_leaves += 1;
                    if self.leaves.get(iagent) != Some(&id) {
                        return Err(format!("leaf index out of sync for {iagent} at {id:?}"));
                    }
                }
                NodeKind::Internal { children } => {
                    if consumed >= KEY_BITS {
                        return Err(format!(
                            "{id:?} branches on key bit {consumed} beyond key width"
                        ));
                    }
                    for (i, &child) in children.iter().enumerate() {
                        let side = if i == 0 { Side::Left } else { Side::Right };
                        let cd = self
                            .nodes
                            .get(child.0 as usize)
                            .and_then(Option::as_ref)
                            .ok_or_else(|| format!("{child:?} referenced but not allocated"))?;
                        if cd.parent != Some((id, side)) {
                            return Err(format!(
                                "{child:?} has parent {:?}, expected {:?}/{side:?}",
                                cd.parent, id
                            ));
                        }
                        stack.push((child, consumed));
                    }
                }
            }
        }
        if seen_leaves != self.leaves.len() {
            return Err(format!(
                "leaf index has {} entries but tree has {seen_leaves} leaves",
                self.leaves.len()
            ));
        }
        let allocated = self.nodes.iter().filter(|n| n.is_some()).count();
        if allocated != visited {
            return Err(format!(
                "{allocated} nodes allocated but only {visited} reachable from the root"
            ));
        }
        if self.node(self.root).parent.is_some() {
            return Err("root has a parent".to_owned());
        }
        Ok(())
    }

    /// All (IAgent, hyper-label) pairs, for display and diagnostics.
    #[must_use]
    pub fn mapping(&self) -> Vec<(IAgentId, HyperLabel)> {
        let mut out: Vec<(IAgentId, HyperLabel)> = self
            .leaves
            .iter()
            .map(|(&ia, &leaf)| (ia, self.hyper_label_of_node(leaf)))
            .collect();
        out.sort_by_key(|(ia, _)| *ia);
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }

    /// For the shape module: `(is_leaf, iagent, unused_bits, children)`.
    pub(crate) fn node_view(&self, id: NodeId) -> (Option<IAgentId>, Bits, Option<[NodeId; 2]>) {
        let data = self.node(id);
        match &data.kind {
            NodeKind::Leaf(ia) => (Some(*ia), data.unused, None),
            NodeKind::Internal { children } => (None, data.unused, Some(*children)),
        }
    }

    fn node(&self, id: NodeId) -> &NodeData {
        self.nodes[id.0 as usize].as_ref().expect("dangling NodeId")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        self.nodes[id.0 as usize].as_mut().expect("dangling NodeId")
    }

    fn child(&self, id: NodeId, side: Side) -> NodeId {
        match &self.node(id).kind {
            NodeKind::Internal { children } => children[side.index()],
            NodeKind::Leaf(_) => panic!("child() on a leaf"),
        }
    }

    fn set_child(&mut self, id: NodeId, side: Side, child: NodeId) {
        match &mut self.node_mut(id).kind {
            NodeKind::Internal { children } => children[side.index()] = child,
            NodeKind::Leaf(_) => panic!("set_child() on a leaf"),
        }
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.0 as usize] = Some(data);
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("tree too large"));
            self.nodes.push(Some(data));
            id
        }
    }

    fn release(&mut self, id: NodeId) {
        self.nodes[id.0 as usize] = None;
        self.free.push(id);
    }

    fn leaf_of(&self, iagent: IAgentId) -> Result<NodeId, TreeError> {
        self.leaves
            .get(&iagent)
            .copied()
            .ok_or(TreeError::UnknownIAgent(iagent))
    }

    fn leaf_node_for_key(&self, key: AgentKey) -> NodeId {
        let mut node = self.root;
        let mut cursor = self.node(node).unused.len();
        loop {
            match &self.node(node).kind {
                NodeKind::Leaf(_) => return node,
                NodeKind::Internal { children } => {
                    let side = Side::from_bit(key.bit(cursor));
                    let child = children[side.index()];
                    cursor += 1 + self.node(child).unused.len();
                    node = child;
                }
            }
        }
    }

    fn consumed_bits_of_node(&self, mut node: NodeId) -> usize {
        let mut consumed = 0;
        loop {
            let data = self.node(node);
            consumed += data.unused.len() + usize::from(data.parent.is_some());
            match data.parent {
                Some((parent, _)) => node = parent,
                None => return consumed,
            }
        }
    }

    fn hyper_label_of_node(&self, leaf: NodeId) -> HyperLabel {
        let mut labels = Vec::new();
        let mut node = leaf;
        let skip;
        loop {
            let data = self.node(node);
            match data.parent {
                Some((parent, side)) => {
                    let label = Label::single(side.bit()).augmented(&data.unused);
                    labels.push(label);
                    node = parent;
                }
                None => {
                    skip = data.unused;
                    break;
                }
            }
        }
        labels.reverse();
        let mut hl = HyperLabel::from_labels(labels);
        hl.set_prefix_skip(skip);
        hl
    }

    fn leaf_iagents_under(&self, node: NodeId) -> Vec<IAgentId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(iagent) => out.push(*iagent),
                NodeKind::Internal { children } => stack.extend(children.iter().copied()),
            }
        }
        out.sort_unstable();
        out
    }

    /// Simple split: branch on the `m`-th extra bit. The split leaf's label
    /// is augmented with the `m - 1` skipped bits (recorded as zeros — their
    /// values carry no constraint), and two fresh single-bit leaf children
    /// are created.
    fn split_simple(
        &mut self,
        leaf: NodeId,
        m: usize,
        new_iagent: IAgentId,
        new_side: Side,
    ) -> Result<SplitApplied, TreeError> {
        if m == 0 {
            return Err(TreeError::InvalidParameter(
                "simple split needs m >= 1".into(),
            ));
        }
        let old_iagent = match self.node(leaf).kind {
            NodeKind::Leaf(ia) => ia,
            NodeKind::Internal { .. } => unreachable!("leaf_of returned internal node"),
        };
        let consumed = self.consumed_bits_of_node(leaf);
        let key_bit = consumed + m - 1;
        if key_bit >= KEY_BITS {
            return Err(TreeError::DepthExceeded { key_bit });
        }

        // Augment the leaf's label with the m-1 skipped bits, then turn it
        // into an internal node with two fresh leaves.
        let mut unused = self.node(leaf).unused;
        for _ in 0..(m - 1) {
            unused.push(false);
        }
        let old_leaf = self.alloc(NodeData {
            parent: Some((leaf, new_side.opposite())),
            unused: Bits::new(),
            kind: NodeKind::Leaf(old_iagent),
        });
        let new_leaf = self.alloc(NodeData {
            parent: Some((leaf, new_side)),
            unused: Bits::new(),
            kind: NodeKind::Leaf(new_iagent),
        });
        let mut children = [old_leaf; 2];
        children[new_side.index()] = new_leaf;
        {
            let n = self.node_mut(leaf);
            n.unused = unused;
            n.kind = NodeKind::Internal { children };
        }
        self.leaves.insert(old_iagent, old_leaf);
        self.leaves.insert(new_iagent, new_leaf);

        Ok(SplitApplied {
            split_iagent: old_iagent,
            new_iagent,
            key_bit,
            new_side,
            affected: vec![old_iagent],
        })
    }

    /// Complex split: promote unused bit `bit_offset` of the edge label into
    /// `edge_node` to a branching decision. A new internal node takes over
    /// the first `bit_offset` unused bits; the existing subtree keeps the
    /// rest and moves to one side; a fresh leaf for the new IAgent takes the
    /// other side.
    fn split_complex(
        &mut self,
        leaf: NodeId,
        edge_node: NodeId,
        bit_offset: usize,
        new_iagent: IAgentId,
        new_side: Side,
    ) -> Result<SplitApplied, TreeError> {
        let old_iagent = match self.node(leaf).kind {
            NodeKind::Leaf(ia) => ia,
            NodeKind::Internal { .. } => unreachable!("leaf_of returned internal node"),
        };
        // The edge node must lie on the leaf's root path.
        let mut on_path = false;
        let mut n = leaf;
        loop {
            if n == edge_node {
                on_path = true;
                break;
            }
            match self.node(n).parent {
                Some((parent, _)) => n = parent,
                None => break,
            }
        }
        if !on_path {
            return Err(TreeError::StaleCandidate(format!(
                "{edge_node:?} is not on the root path of {old_iagent}"
            )));
        }
        let edge = self.node(edge_node).clone();
        if bit_offset >= edge.unused.len() {
            return Err(TreeError::StaleCandidate(format!(
                "bit offset {bit_offset} out of range for a label with {} unused bits",
                edge.unused.len()
            )));
        }

        let head = edge.unused.prefix(bit_offset);
        let tail = edge.unused.suffix_from(bit_offset + 1);
        let key_bit = {
            // Position of the promoted bit.
            let consumed_above = match edge.parent {
                Some((p, _)) => self.consumed_bits_of_node(p) + 1,
                None => 0,
            };
            consumed_above + bit_offset
        };

        // New internal node takes the edge's place, keeping the label head.
        let existing_side = new_side.opposite();
        let new_internal = self.alloc(NodeData {
            parent: edge.parent,
            unused: head,
            kind: NodeKind::Leaf(IAgentId(u64::MAX)), // placeholder, set below
        });
        let new_leaf = self.alloc(NodeData {
            parent: Some((new_internal, new_side)),
            unused: tail,
            kind: NodeKind::Leaf(new_iagent),
        });
        {
            let e = self.node_mut(edge_node);
            e.parent = Some((new_internal, existing_side));
            e.unused = tail;
        }
        let mut children = [edge_node; 2];
        children[new_side.index()] = new_leaf;
        self.node_mut(new_internal).kind = NodeKind::Internal { children };
        match edge.parent {
            Some((p, side)) => self.set_child(p, side, new_internal),
            None => self.root = new_internal,
        }
        self.leaves.insert(new_iagent, new_leaf);

        let mut affected = self.leaf_iagents_under(edge_node);
        affected.retain(|&ia| ia != new_iagent);
        Ok(SplitApplied {
            split_iagent: old_iagent,
            new_iagent,
            key_bit,
            new_side,
            affected,
        })
    }
}

impl fmt::Debug for HashTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("HashTree");
        s.field("iagents", &self.iagent_count());
        for (ia, hl) in self.mapping() {
            s.field(&ia.to_string(), &hl.to_string());
        }
        s.finish()
    }
}

impl fmt::Display for HashTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (ia, hl) in self.mapping() {
            writeln!(f, "{ia}: {hl}")?;
        }
        Ok(())
    }
}

impl PartialEq for HashTree {
    /// Trees are equal when they encode the same hash function: same IAgents
    /// with the same hyper-labels. Arena layout is irrelevant.
    fn eq(&self, other: &Self) -> bool {
        self.mapping() == other.mapping()
    }
}

impl Eq for HashTree {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key whose first bits are given by `prefix`, remaining bits zero.
    fn key(prefix: &str) -> AgentKey {
        let bits: Bits = prefix.parse().unwrap();
        AgentKey::new(bits.raw())
    }

    fn ia(n: u64) -> IAgentId {
        IAgentId::new(n)
    }

    fn simple(tree: &HashTree, iagent: IAgentId, m: usize) -> SplitCandidate {
        tree.split_candidates(iagent)
            .unwrap()
            .into_iter()
            .find(|c| c.kind == SplitKind::Simple { m })
            .unwrap_or_else(|| panic!("no simple-{m} candidate for {iagent}"))
    }

    fn labels_of(tree: &HashTree) -> Vec<(IAgentId, String)> {
        tree.mapping()
            .into_iter()
            .map(|(ia, hl)| (ia, hl.to_string()))
            .collect()
    }

    /// Builds a small Figure-1-style tree:
    ///
    /// ```text
    ///   IA0: 0.0    IA2: 0.1    IA1: 10.0    IA3: 10.1
    /// ```
    ///
    /// (The exact bit patterns of the paper's Figure 1 are unreadable in the
    /// source text; this tree exercises the same structure: single-bit and
    /// multi-bit labels on both sides.)
    fn figure1_style_tree() -> HashTree {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(0), 1), ia(2), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 2), ia(3), Side::Right)
            .unwrap();
        tree.validate().unwrap();
        tree
    }

    #[test]
    fn fresh_tree_maps_everything_to_the_initial_iagent() {
        let tree = HashTree::new(ia(7));
        assert_eq!(tree.iagent_count(), 1);
        for raw in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            assert_eq!(tree.lookup(AgentKey::new(raw)), ia(7));
        }
        assert_eq!(tree.hyper_label(ia(7)).unwrap(), HyperLabel::root());
        assert_eq!(tree.consumed_bits(ia(7)).unwrap(), 0);
        assert_eq!(tree.height(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn figure1_style_structure() {
        let tree = figure1_style_tree();
        assert_eq!(
            labels_of(&tree),
            vec![
                (ia(0), "0.0".to_owned()),
                (ia(1), "10.0".to_owned()),
                (ia(2), "0.1".to_owned()),
                (ia(3), "10.1".to_owned()),
            ]
        );
        // Traversal: bit 0 selects the root child; the right child's label
        // "10" skips bit 1; bit 1 (left) / bit 2 (right) select the leaf.
        assert_eq!(tree.lookup(key("00")), ia(0));
        assert_eq!(tree.lookup(key("01")), ia(2));
        assert_eq!(tree.lookup(key("100")), ia(1));
        assert_eq!(tree.lookup(key("101")), ia(3));
        assert_eq!(tree.lookup(key("110")), ia(1)); // bit 1 ignored
        assert_eq!(tree.lookup(key("111")), ia(3));
        assert_eq!(tree.consumed_bits(ia(0)).unwrap(), 2);
        assert_eq!(tree.consumed_bits(ia(3)).unwrap(), 3);
        assert_eq!(tree.height(), 2);
    }

    /// Paper §4.1 / Figure 3: simple split of IA3 with hyper-label `1.1`
    /// and m = 1 creates `1.1.0` (kept by IA3) and `1.1.1` (new IAgent).
    #[test]
    fn paper_figure3_simple_split() {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 1), ia(3), Side::Right)
            .unwrap();
        assert_eq!(tree.hyper_label(ia(3)).unwrap().to_string(), "1.1");

        let applied = tree
            .apply_split(&simple(&tree, ia(3), 1), ia(7), Side::Right)
            .unwrap();
        assert_eq!(applied.split_iagent, ia(3));
        assert_eq!(applied.new_iagent, ia(7));
        assert_eq!(applied.key_bit, 2);
        assert_eq!(applied.affected, vec![ia(3)]);
        assert_eq!(tree.hyper_label(ia(3)).unwrap().to_string(), "1.1.0");
        assert_eq!(tree.hyper_label(ia(7)).unwrap().to_string(), "1.1.1");
        assert_eq!(tree.lookup(key("110")), ia(3));
        assert_eq!(tree.lookup(key("111")), ia(7));
        tree.validate().unwrap();
    }

    /// Simple split with m = 2: the split leaf's label is augmented with the
    /// skipped bit, and the partition happens on the second extra bit.
    #[test]
    fn simple_split_m2_augments_label_and_branches_later() {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        let cand = simple(&tree, ia(1), 2);
        assert_eq!(cand.key_bit, 2);
        let applied = tree.apply_split(&cand, ia(2), Side::Right).unwrap();
        assert_eq!(applied.key_bit, 2);
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "10.0");
        assert_eq!(tree.hyper_label(ia(2)).unwrap().to_string(), "10.1");
        // Bit 1 is skipped: keys 10x and 11x branch the same way on bit 2.
        assert_eq!(tree.lookup(key("100")), ia(1));
        assert_eq!(tree.lookup(key("110")), ia(1));
        assert_eq!(tree.lookup(key("101")), ia(2));
        assert_eq!(tree.lookup(key("111")), ia(2));
        tree.validate().unwrap();
    }

    /// Paper §4.1 / Figure 4: complex split uses an unused bit of a
    /// multi-bit label. Splitting a leaf whose own edge label is `10`
    /// (valid bit 1, unused bit at key position 2) promotes the unused bit.
    #[test]
    fn paper_figure4_complex_split_on_own_label() {
        let mut tree = figure1_style_tree();
        // IA1 has hyper-label 10.0: the label "10" has one unused bit at
        // key position 1.
        let candidates = tree.split_candidates(ia(1)).unwrap();
        let complex = candidates
            .iter()
            .find(|c| matches!(c.kind, SplitKind::Complex { .. }))
            .expect("complex candidate must exist");
        // Complex candidates come before simple ones (paper order).
        assert!(matches!(candidates[0].kind, SplitKind::Complex { .. }));
        assert_eq!(complex.key_bit, 1);

        let applied = tree.apply_split(complex, ia(8), Side::Right).unwrap();
        assert_eq!(applied.key_bit, 1);
        // The multi-bit label 10 was truncated at the promoted bit: the
        // subtree that held IA1/IA3 now hangs under 1.0 and the new IAgent
        // under 1.1.
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "1.0.0");
        assert_eq!(tree.hyper_label(ia(3)).unwrap().to_string(), "1.0.1");
        assert_eq!(tree.hyper_label(ia(8)).unwrap().to_string(), "1.1");
        // Both old leaves are affected: their agents with bit1 = 1 move.
        assert_eq!(applied.affected, vec![ia(1), ia(3)]);
        assert_eq!(tree.lookup(key("100")), ia(1));
        assert_eq!(tree.lookup(key("101")), ia(3));
        assert_eq!(tree.lookup(key("110")), ia(8));
        assert_eq!(tree.lookup(key("111")), ia(8));
        tree.validate().unwrap();
    }

    /// Paper §4.2 / Figure 5: simple merge — the sibling is a leaf, the two
    /// fold into one whose label records the demoted valid bit as unused.
    #[test]
    fn paper_figure5_simple_merge() {
        let mut tree = figure1_style_tree();
        // IA3 (10.1) merges with its sibling leaf IA1 (10.0).
        let applied = tree.apply_merge(ia(3)).unwrap();
        assert_eq!(applied.removed, ia(3));
        assert_eq!(applied.kind, MergeKind::Simple);
        assert_eq!(applied.absorbers, vec![ia(1)]);
        // IA1's label becomes 100: valid bit 1, unused bits 0 (the skipped
        // bit from the old "10") and 0 (IA1's demoted valid bit).
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "100");
        for k in ["100", "101", "110", "111"] {
            assert_eq!(tree.lookup(key(k)), ia(1));
        }
        assert_eq!(tree.lookup(key("00")), ia(0));
        tree.validate().unwrap();
    }

    /// Paper §4.2 / Figure 6: complex merge — the sibling is an internal
    /// node; the merged IAgent's agents are distributed over the leaves of
    /// the sibling's subtree, and the height may shrink.
    #[test]
    fn paper_figure6_complex_merge() {
        let mut tree = figure1_style_tree();
        assert_eq!(tree.height(), 2);
        // IA0 (0.0) has sibling leaf IA2; but IA1's parent subtree is
        // internal seen from IA0's side? Build the complex case explicitly:
        // merge IA0 whose sibling is the leaf IA2 — that is simple. Instead
        // merge IA2, then the left side is a single leaf; so use the right
        // side: IA1's sibling is IA3 (leaf). To exercise complex merge,
        // merge IA0 and then IA2's sibling is the internal right subtree?
        // Simpler: merge the left leaf IA0; sibling IA2 is a leaf (simple).
        // For the complex case we need a leaf whose sibling is internal:
        // after merging IA2 away the left child of the root is IA0 and the
        // right child is the internal node over IA1/IA3.
        tree.apply_merge(ia(2)).unwrap();
        assert_eq!(tree.hyper_label(ia(0)).unwrap().to_string(), "00");

        let applied = tree.apply_merge(ia(0)).unwrap();
        assert_eq!(applied.kind, MergeKind::Complex);
        assert_eq!(applied.absorbers, vec![ia(1), ia(3)]);
        // The surviving subtree's root-edge label ("10") becomes a prefix
        // skip with its valid bit demoted: bits 0-1 are unconstrained and
        // the removed leaf's own label is discarded.
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "[10].0");
        assert_eq!(tree.hyper_label(ia(3)).unwrap().to_string(), "[10].1");
        assert_eq!(tree.height(), 1);
        // Keys previously served by IA0 (prefix 00) distribute over the
        // subtree by bit 2.
        assert_eq!(tree.lookup(key("000")), ia(1));
        assert_eq!(tree.lookup(key("001")), ia(3));
        assert_eq!(tree.lookup(key("100")), ia(1));
        assert_eq!(tree.lookup(key("111")), ia(3));
        tree.validate().unwrap();
    }

    #[test]
    fn merge_to_single_leaf_and_resplit_via_skip() {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        let applied = tree.apply_merge(ia(1)).unwrap();
        assert_eq!(applied.absorbers, vec![ia(0)]);
        assert_eq!(tree.iagent_count(), 1);
        assert_eq!(tree.hyper_label(ia(0)).unwrap().to_string(), "[0]");
        assert_eq!(tree.consumed_bits(ia(0)).unwrap(), 1);
        for raw in [0u64, u64::MAX] {
            assert_eq!(tree.lookup(AgentKey::new(raw)), ia(0));
        }
        tree.validate().unwrap();

        // The skip bit is a complex-split candidate (key bit 0).
        let candidates = tree.split_candidates(ia(0)).unwrap();
        let complex = &candidates[0];
        assert!(matches!(
            complex.kind,
            SplitKind::Complex { bit_offset: 0, .. }
        ));
        assert_eq!(complex.key_bit, 0);
        tree.apply_split(complex, ia(2), Side::Right).unwrap();
        assert_eq!(tree.hyper_label(ia(0)).unwrap().to_string(), "0");
        assert_eq!(tree.hyper_label(ia(2)).unwrap().to_string(), "1");
        assert_eq!(tree.lookup(key("0")), ia(0));
        assert_eq!(tree.lookup(key("1")), ia(2));
        tree.validate().unwrap();
    }

    #[test]
    fn complex_split_at_ancestor_edge_affects_whole_subtree() {
        // Build: IA0 = 0, IA1 = 11.0, IA2 = 11.1 (merge IA1's old sibling
        // away to create the multi-bit ancestor label).
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 1), ia(9), Side::Left)
            .unwrap();
        // IA9 took the left side: IA9 = 1.0, IA1 = 1.1. Split IA1 again.
        tree.apply_split(&simple(&tree, ia(1), 1), ia(2), Side::Right)
            .unwrap();
        // Now merge IA9; its sibling (internal over IA1, IA2) absorbs.
        let merged = tree.apply_merge(ia(9)).unwrap();
        assert_eq!(merged.kind, MergeKind::Complex);
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "11.0");
        assert_eq!(tree.hyper_label(ia(2)).unwrap().to_string(), "11.1");

        // Complex candidate at the ancestor edge "11", key bit 1.
        let candidates = tree.split_candidates(ia(1)).unwrap();
        let complex = candidates
            .iter()
            .find(|c| matches!(c.kind, SplitKind::Complex { .. }))
            .unwrap();
        assert_eq!(complex.key_bit, 1);
        let applied = tree.apply_split(complex, ia(5), Side::Left).unwrap();
        assert_eq!(applied.affected, vec![ia(1), ia(2)]);
        assert_eq!(tree.hyper_label(ia(5)).unwrap().to_string(), "1.0");
        assert_eq!(tree.hyper_label(ia(1)).unwrap().to_string(), "1.1.0");
        assert_eq!(tree.hyper_label(ia(2)).unwrap().to_string(), "1.1.1");
        assert_eq!(tree.lookup(key("10")), ia(5));
        assert_eq!(tree.lookup(key("110")), ia(1));
        assert_eq!(tree.lookup(key("111")), ia(2));
        tree.validate().unwrap();
    }

    #[test]
    fn exactly_one_leaf_is_compatible_with_any_key() {
        let tree = figure1_style_tree();
        let keys: Vec<AgentKey> = (0..256u64).map(AgentKey::from_sequential).collect();
        for k in keys {
            let compatible: Vec<IAgentId> = tree
                .mapping()
                .into_iter()
                .filter(|(_, hl)| hl.is_compatible(k))
                .map(|(ia, _)| ia)
                .collect();
            assert_eq!(
                compatible.len(),
                1,
                "key {k} compatible with {compatible:?}"
            );
            assert_eq!(compatible[0], tree.lookup(k));
        }
    }

    #[test]
    fn split_errors() {
        let mut tree = figure1_style_tree();
        // Duplicate IAgent id.
        let cand = simple(&tree, ia(0), 1);
        assert_eq!(
            tree.apply_split(&cand, ia(1), Side::Right),
            Err(TreeError::DuplicateIAgent(ia(1)))
        );
        // Unknown IAgent.
        assert_eq!(
            tree.split_candidates(ia(42)),
            Err(TreeError::UnknownIAgent(ia(42)))
        );
        // m = 0 is invalid.
        let bad = SplitCandidate {
            iagent: ia(0),
            kind: SplitKind::Simple { m: 0 },
            key_bit: 0,
            generation: tree.generation(),
        };
        assert!(matches!(
            tree.apply_split(&bad, ia(50), Side::Right),
            Err(TreeError::InvalidParameter(_))
        ));
        // Branching past the key width.
        let too_deep = SplitCandidate {
            iagent: ia(0),
            kind: SplitKind::Simple { m: KEY_BITS },
            key_bit: KEY_BITS + 1,
            generation: tree.generation(),
        };
        assert!(matches!(
            tree.apply_split(&too_deep, ia(51), Side::Right),
            Err(TreeError::DepthExceeded { .. })
        ));
        tree.validate().unwrap();
    }

    #[test]
    fn merge_errors() {
        let mut tree = HashTree::new(ia(0));
        assert_eq!(tree.apply_merge(ia(0)), Err(TreeError::LastIAgent));
        assert_eq!(
            tree.apply_merge(ia(9)),
            Err(TreeError::UnknownIAgent(ia(9)))
        );
    }

    #[test]
    fn stale_complex_candidate_is_rejected() {
        let mut tree = figure1_style_tree();
        let complex = tree
            .split_candidates(ia(1))
            .unwrap()
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Complex { .. }))
            .unwrap();
        // Mutate the tree so the candidate's edge node no longer lies on
        // IA1's path (merge IA1 itself away and re-add it elsewhere).
        tree.apply_merge(ia(1)).unwrap();
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        assert!(matches!(
            tree.apply_split(&complex, ia(60), Side::Right),
            Err(TreeError::StaleCandidate(_))
        ));
    }

    #[test]
    fn simple_candidates_cover_remaining_key_bits() {
        let tree = HashTree::new(ia(0));
        let candidates = tree.split_candidates(ia(0)).unwrap();
        assert_eq!(candidates.len(), KEY_BITS);
        assert!(candidates
            .iter()
            .enumerate()
            .all(|(i, c)| c.kind == SplitKind::Simple { m: i + 1 } && c.key_bit == i));
    }

    #[test]
    fn split_then_merge_restores_the_mapping() {
        let mut tree = figure1_style_tree();
        let before: Vec<(AgentKey, IAgentId)> = (0..512u64)
            .map(|i| {
                let k = AgentKey::from_sequential(i);
                (k, tree.lookup(k))
            })
            .collect();
        tree.apply_split(&simple(&tree, ia(2), 3), ia(30), Side::Left)
            .unwrap();
        tree.apply_merge(ia(30)).unwrap();
        for (k, expect) in before {
            assert_eq!(tree.lookup(k), expect);
        }
        tree.validate().unwrap();
    }

    #[test]
    fn serde_round_trip_preserves_the_hash_function() {
        let tree = figure1_style_tree();
        let json = serde_json::to_string(&tree).unwrap();
        let back: HashTree = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(tree, back);
        for i in 0..512u64 {
            let k = AgentKey::from_sequential(i);
            assert_eq!(tree.lookup(k), back.lookup(k));
        }
    }

    #[test]
    fn display_and_debug_are_informative() {
        let tree = figure1_style_tree();
        let shown = tree.to_string();
        assert!(shown.contains("IA0: 0.0"));
        assert!(shown.contains("IA3: 10.1"));
        assert!(format!("{tree:?}").contains("iagents"));
        assert!(!format!("{:?}", Side::Left).is_empty());
        assert_eq!(Side::Left.to_string(), "left");
    }

    #[test]
    fn side_arithmetic() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
        assert!(Side::Right.bit());
        assert!(!Side::Left.bit());
        assert_eq!(Side::from_bit(true), Side::Right);
        assert_eq!(Side::from_bit(false), Side::Left);
    }

    #[test]
    fn regions_overlap_iff_a_key_satisfies_both() {
        let tree = figure1_style_tree();
        // IA0: 0.0, IA1: 10.0, IA2: 0.1, IA3: 10.1
        let region_of = |n: u64| PrefixRegion::from_hyper_label(&tree.hyper_label(ia(n)).unwrap());
        let (r0, r1, r2, r3) = (region_of(0), region_of(1), region_of(2), region_of(3));
        // Sibling leaves differ on their deepest valid bit: disjoint.
        assert!(!r0.overlaps(&r2));
        assert!(!r1.overlaps(&r3));
        // Leaves across the root differ on bit 0: disjoint.
        assert!(!r0.overlaps(&r1));
        // Every region overlaps itself and the universal region.
        for r in [r0, r1, r2, r3] {
            assert!(r.overlaps(&r));
            assert!(r.overlaps(&PrefixRegion::EVERYTHING));
            assert!(PrefixRegion::EVERYTHING.overlaps(&r));
        }
        assert_eq!(PrefixRegion::EVERYTHING.constrained_bits(), 0);
        // An ancestor region (the subtree under the root's right edge)
        // overlaps both of its descendant leaves but not the left side.
        let parent: HyperLabel = "10".parse().unwrap();
        let ancestor = PrefixRegion::from_hyper_label(&parent);
        assert!(ancestor.overlaps(&r1));
        assert!(ancestor.overlaps(&r3));
        assert!(!ancestor.overlaps(&r0));
        assert_eq!(ancestor.constrained_bits(), 1);
    }

    #[test]
    fn split_and_merge_regions_match_the_affected_subtree() {
        let tree = figure1_style_tree();
        // Simple split of IA1 (10.0) remaps only IA1's own keys.
        let simple_cand = simple(&tree, ia(1), 1);
        let r = tree.split_region(&simple_cand).unwrap();
        assert_eq!(
            r,
            PrefixRegion::from_hyper_label(&tree.hyper_label(ia(1)).unwrap())
        );
        // Complex split of IA1 promotes the unused bit of the root's right
        // edge: the region covers the whole right subtree (IA1 and IA3).
        let complex_cand = tree
            .split_candidates(ia(1))
            .unwrap()
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Complex { .. }))
            .unwrap();
        let rc = tree.split_region(&complex_cand).unwrap();
        let r3 = PrefixRegion::from_hyper_label(&tree.hyper_label(ia(3)).unwrap());
        assert!(rc.overlaps(&r3), "complex region must cover the sibling");
        assert!(!rc.overlaps(&PrefixRegion::from_hyper_label(
            &tree.hyper_label(ia(0)).unwrap()
        )));
        // Merging IA3 remaps its parent's subtree: overlaps IA1, not IA0.
        let rm = tree.merge_region(ia(3)).unwrap();
        assert!(rm.overlaps(&PrefixRegion::from_hyper_label(
            &tree.hyper_label(ia(1)).unwrap()
        )));
        assert!(!rm.overlaps(&PrefixRegion::from_hyper_label(
            &tree.hyper_label(ia(0)).unwrap()
        )));
        // A stale candidate (older generation) is rejected.
        let mut grown = tree.clone();
        grown
            .apply_split(&simple(&grown, ia(2), 1), ia(9), Side::Right)
            .unwrap();
        assert!(matches!(
            grown.split_region(&simple_cand),
            Err(TreeError::StaleCandidate(_))
        ));
        // Merging the last leaf has no region.
        let lone = HashTree::new(ia(0));
        assert_eq!(lone.merge_region(ia(0)), Err(TreeError::LastIAgent));
    }

    #[test]
    fn refreshed_candidate_survives_disjoint_commits() {
        let mut tree = figure1_style_tree();
        // Plan a split of IA1 (right subtree), then commit a disjoint
        // split of IA0 (left subtree) first.
        let planned = simple(&tree, ia(1), 1);
        tree.apply_split(&simple(&tree, ia(0), 1), ia(8), Side::Right)
            .unwrap();
        // The planned candidate is now generation-stale, but its key bit
        // re-derives an equivalent candidate against the new generation.
        assert!(matches!(
            tree.apply_split(&planned, ia(9), Side::Right),
            Err(TreeError::StaleCandidate(_))
        ));
        let refreshed = tree.refreshed_candidate(ia(1), planned.key_bit).unwrap();
        assert_eq!(refreshed.kind, planned.kind);
        assert_eq!(refreshed.key_bit, planned.key_bit);
        tree.apply_split(&refreshed, ia(9), Side::Right).unwrap();
        tree.validate().unwrap();
        // A key bit nothing partitions on is an error.
        assert!(matches!(
            tree.refreshed_candidate(ia(1), KEY_BITS + 5),
            Err(TreeError::StaleCandidate(_))
        ));
    }

    #[test]
    fn iagent_display_matches_paper() {
        assert_eq!(ia(3).to_string(), "IA3");
        assert_eq!(format!("{:?}", ia(3)), "IA3");
        assert_eq!(IAgentId::from(4u64).raw(), 4);
    }
}
