//! # agentrack-hashtree
//!
//! The dynamic (extendible) hash tree at the heart of the scalable
//! hash-based mobile-agent location mechanism of Kastidou, Pitoura and
//! Samaras (ICDCSW 2003).
//!
//! A mobile-agent system needs to *locate* agents as they roam: given an
//! agent's id, find the node it currently executes on. The paper assigns
//! each agent to an **Information Agent (IAgent)** that tracks its precise
//! location, and determines the assignment with a dynamic hash function over
//! the binary representation of the agent's id. This crate implements that
//! hash function's representation — the **hash tree** — and its rehashing
//! operations (simple/complex split and merge), as a pure data structure
//! with no I/O, suitable both for the protocol engine in `agentrack-core`
//! and for standalone study.
//!
//! ## Concepts
//!
//! * [`AgentKey`] — the binary representation of an agent id (64 bits,
//!   consumed most-significant first).
//! * [`Label`] — an edge label: a *valid bit* (which selects the left/`0` or
//!   right/`1` child) followed by recorded-but-ignored *unused* bits.
//! * [`HyperLabel`] — the concatenation of labels from the root to a node;
//!   an agent key is served by the leaf whose hyper-label it is *compatible*
//!   with.
//! * [`HashTree`] — the tree itself: total key→IAgent mapping, split
//!   candidate enumeration, split/merge application, invariant validation.
//!
//! ## Example
//!
//! ```
//! use agentrack_hashtree::{AgentKey, HashTree, IAgentId, Side, SplitKind};
//!
//! let mut tree = HashTree::new(IAgentId::new(0));
//!
//! // Overloaded? Enumerate split candidates in the paper's order and apply
//! // one (here: the first simple split, branching on key bit 0).
//! let candidates = tree.split_candidates(IAgentId::new(0))?;
//! let first_simple = candidates
//!     .iter()
//!     .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
//!     .unwrap();
//! tree.apply_split(first_simple, IAgentId::new(1), Side::Right)?;
//!
//! assert_eq!(tree.iagent_count(), 2);
//! assert_eq!(tree.lookup(AgentKey::new(0)), IAgentId::new(0));
//! assert_eq!(tree.lookup(AgentKey::new(u64::MAX)), IAgentId::new(1));
//!
//! // Underloaded? Merge the new IAgent back away.
//! let merged = tree.apply_merge(IAgentId::new(1))?;
//! assert_eq!(merged.absorbers, vec![IAgentId::new(0)]);
//! assert_eq!(tree.lookup(AgentKey::new(u64::MAX)), IAgentId::new(0));
//! # Ok::<(), agentrack_hashtree::TreeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bits;
pub mod compiled;
mod error;
mod key;
mod label;
mod shape;
pub mod tree;

pub use bits::{Bits, ParseBitsError, MAX_BITS};
pub use compiled::{CompiledDirectory, MAX_COMPILED_DEPTH};
pub use error::TreeError;
pub use key::{AgentKey, KEY_BITS};
pub use label::{HyperLabel, Label, ParseLabelError};
pub use shape::TreeShape;
pub use tree::{
    HashTree, IAgentId, MergeApplied, MergeKind, NodeId, PrefixRegion, Side, SplitApplied,
    SplitCandidate, SplitKind,
};
