//! Fixed-capacity bit strings used for edge labels and key prefixes.
//!
//! A [`Bits`] value is an ordered sequence of up to 64 bits, indexed from the
//! left (index 0 is the first bit). Labels in the hash tree are short — a few
//! bits — but the total prefix consumed along any root-to-leaf path may reach
//! the full width of an agent key, so 64 bits of capacity is exactly enough.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Maximum number of bits a [`Bits`] value can hold.
///
/// This equals [`crate::key::KEY_BITS`]: no label (and no hyper-label) can be
/// longer than an agent key.
pub const MAX_BITS: usize = 64;

/// An ordered sequence of up to [`MAX_BITS`] bits.
///
/// Bits are stored left-aligned in a `u64`, so index 0 corresponds to the
/// most-significant stored bit. The empty sequence is valid and is the
/// identity for [`Bits::concat`].
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::Bits;
///
/// let b: Bits = "010".parse()?;
/// assert_eq!(b.len(), 3);
/// assert_eq!(b.get(0), Some(false));
/// assert_eq!(b.get(1), Some(true));
/// assert_eq!(b.to_string(), "010");
/// # Ok::<(), agentrack_hashtree::ParseBitsError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bits {
    /// Number of valid bits.
    len: u8,
    /// Bit storage; bit `i` lives at position `63 - i`. Unoccupied low bits
    /// are always zero, which makes derived `Eq`/`Hash` correct.
    raw: u64,
}

impl Bits {
    /// Creates an empty bit string.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentrack_hashtree::Bits;
    /// assert!(Bits::new().is_empty());
    /// ```
    #[must_use]
    pub const fn new() -> Self {
        Bits { len: 0, raw: 0 }
    }

    /// Creates a bit string containing a single bit.
    #[must_use]
    pub const fn single(bit: bool) -> Self {
        Bits {
            len: 1,
            raw: (bit as u64) << 63,
        }
    }

    /// Creates a bit string from the `len` most-significant bits of `raw`.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    #[must_use]
    pub fn from_raw(raw: u64, len: usize) -> Self {
        assert!(len <= MAX_BITS, "Bits::from_raw: len {len} > {MAX_BITS}");
        Bits {
            len: len as u8,
            raw: mask_high(raw, len),
        }
    }

    /// Creates a bit string from a slice of booleans, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > MAX_BITS`.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        assert!(bits.len() <= MAX_BITS);
        let mut b = Bits::new();
        for &bit in bits {
            b.push(bit);
        }
        b
    }

    /// Number of bits stored.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no bits are stored.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`, or `None` if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<bool> {
        if i < self.len() {
            Some((self.raw >> (63 - i)) & 1 == 1)
        } else {
            None
        }
    }

    /// Returns the first bit.
    ///
    /// # Panics
    ///
    /// Panics if the bit string is empty.
    #[must_use]
    pub fn first(&self) -> bool {
        self.get(0).expect("Bits::first on empty bit string")
    }

    /// Appends a bit at the end.
    ///
    /// # Panics
    ///
    /// Panics if the string is already [`MAX_BITS`] long.
    pub fn push(&mut self, bit: bool) {
        assert!(self.len() < MAX_BITS, "Bits::push: capacity exceeded");
        self.raw |= (bit as u64) << (63 - self.len());
        self.len += 1;
    }

    /// Returns a new bit string with `bit` appended.
    #[must_use]
    pub fn with(mut self, bit: bool) -> Self {
        self.push(bit);
        self
    }

    /// Returns the sub-string covering `start..end` (end exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.len(),
            "Bits::slice out of range"
        );
        let len = end - start;
        if len == 0 {
            // `raw << 64` would overflow when start == 64.
            return Bits::new();
        }
        Bits::from_raw(self.raw << start, len)
    }

    /// Returns the first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Self {
        self.slice(0, n)
    }

    /// Returns everything after the first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn suffix_from(&self, n: usize) -> Self {
        self.slice(n, self.len())
    }

    /// Concatenates two bit strings.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds [`MAX_BITS`].
    #[must_use]
    pub fn concat(&self, other: &Bits) -> Self {
        let total = self.len() + other.len();
        assert!(total <= MAX_BITS, "Bits::concat: capacity exceeded");
        // `other.raw >> 64` would overflow when self is full (other is
        // necessarily empty then).
        let tail = if other.is_empty() {
            0
        } else {
            other.raw >> self.len()
        };
        Bits {
            len: total as u8,
            raw: self.raw | tail,
        }
    }

    /// Returns the raw left-aligned storage word.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.raw
    }

    /// Iterates over the bits, left to right.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bits: self, pos: 0 }
    }

    /// Returns `true` if `self` is a prefix of `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Bits) -> bool {
        self.len() <= other.len() && other.prefix(self.len()) == *self
    }
}

impl Default for Bits {
    fn default() -> Self {
        Bits::new()
    }
}

/// Iterator over the bits of a [`Bits`] value, produced by [`Bits::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bits: &'a Bits,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.pos)?;
        self.pos += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bits.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Bits {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = Bits::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

impl Extend<bool> for Bits {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for bit in iter {
            self.push(bit);
        }
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits(\"{self}\")")
    }
}

/// Error returned when parsing a [`Bits`] value from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBitsError {
    /// The input contained a character other than `0` or `1`.
    InvalidCharacter(char),
    /// The input was longer than [`MAX_BITS`] characters.
    TooLong(usize),
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBitsError::InvalidCharacter(c) => {
                write!(f, "invalid character {c:?} in bit string")
            }
            ParseBitsError::TooLong(n) => {
                write!(f, "bit string of length {n} exceeds maximum of {MAX_BITS}")
            }
        }
    }
}

impl std::error::Error for ParseBitsError {}

impl FromStr for Bits {
    type Err = ParseBitsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() > MAX_BITS {
            return Err(ParseBitsError::TooLong(s.len()));
        }
        let mut b = Bits::new();
        for c in s.chars() {
            match c {
                '0' => b.push(false),
                '1' => b.push(true),
                other => return Err(ParseBitsError::InvalidCharacter(other)),
            }
        }
        Ok(b)
    }
}

/// Keeps the `len` most-significant bits of `raw`, zeroing the rest.
fn mask_high(raw: u64, len: usize) -> u64 {
    if len == 0 {
        0
    } else if len >= 64 {
        raw
    } else {
        raw & (u64::MAX << (64 - len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bits() {
        let b = Bits::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.get(0), None);
        assert_eq!(b.to_string(), "");
        assert_eq!(b, Bits::default());
    }

    #[test]
    fn single_bit() {
        assert_eq!(Bits::single(false).to_string(), "0");
        assert_eq!(Bits::single(true).to_string(), "1");
        assert!(Bits::single(true).first());
    }

    #[test]
    fn push_and_get() {
        let mut b = Bits::new();
        b.push(true);
        b.push(false);
        b.push(true);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), Some(true));
        assert_eq!(b.get(1), Some(false));
        assert_eq!(b.get(2), Some(true));
        assert_eq!(b.get(3), None);
        assert_eq!(b.to_string(), "101");
    }

    #[test]
    fn parse_round_trip() {
        for s in ["", "0", "1", "0101", "1110001", "0".repeat(64).as_str()] {
            let b: Bits = s.parse().unwrap();
            assert_eq!(b.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            "01x".parse::<Bits>(),
            Err(ParseBitsError::InvalidCharacter('x'))
        );
        assert_eq!(
            "0".repeat(65).parse::<Bits>(),
            Err(ParseBitsError::TooLong(65))
        );
    }

    #[test]
    fn concat_assembles_in_order() {
        let a: Bits = "01".parse().unwrap();
        let b: Bits = "110".parse().unwrap();
        assert_eq!(a.concat(&b).to_string(), "01110");
        assert_eq!(b.concat(&a).to_string(), "11001");
        assert_eq!(a.concat(&Bits::new()), a);
        assert_eq!(Bits::new().concat(&a), a);
    }

    #[test]
    fn slice_prefix_suffix() {
        let b: Bits = "011010".parse().unwrap();
        assert_eq!(b.slice(1, 4).to_string(), "110");
        assert_eq!(b.prefix(2).to_string(), "01");
        assert_eq!(b.suffix_from(2).to_string(), "1010");
        assert_eq!(b.slice(3, 3).to_string(), "");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let b: Bits = "01".parse().unwrap();
        let _ = b.slice(0, 3);
    }

    #[test]
    fn equality_ignores_unused_storage() {
        // Construct "10" two different ways and ensure equality and hashing
        // agree (the masked representation is canonical).
        let a = Bits::from_raw(0b10u64 << 62, 2);
        let b = Bits::from_raw(u64::MAX, 2).prefix(2);
        assert_eq!(b.to_string(), "11");
        let c = Bits::from_raw(0b11u64 << 62, 2);
        assert_eq!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn from_raw_masks_low_bits() {
        let b = Bits::from_raw(u64::MAX, 3);
        assert_eq!(b.to_string(), "111");
        assert_eq!(b.raw(), 0b111u64 << 61);
    }

    #[test]
    fn iterator_and_collect() {
        let b: Bits = "0110".parse().unwrap();
        let v: Vec<bool> = b.iter().collect();
        assert_eq!(v, vec![false, true, true, false]);
        let back: Bits = v.into_iter().collect();
        assert_eq!(back, b);
        assert_eq!(b.iter().len(), 4);
    }

    #[test]
    fn is_prefix_of() {
        let a: Bits = "01".parse().unwrap();
        let b: Bits = "0110".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(Bits::new().is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        let c: Bits = "10".parse().unwrap();
        assert!(!c.is_prefix_of(&b));
    }

    #[test]
    fn with_builds_incrementally() {
        let b = Bits::new().with(true).with(false).with(true);
        assert_eq!(b.to_string(), "101");
    }

    #[test]
    fn boundary_ops_at_full_width_do_not_overflow() {
        let full = Bits::from_raw(u64::MAX, 64);
        assert_eq!(full.concat(&Bits::new()), full);
        assert_eq!(Bits::new().concat(&full), full);
        assert_eq!(full.slice(64, 64), Bits::new());
        assert_eq!(full.suffix_from(64), Bits::new());
        assert_eq!(full.prefix(0), Bits::new());
    }

    #[test]
    fn full_capacity() {
        let mut b = Bits::new();
        for i in 0..64 {
            b.push(i % 2 == 0);
        }
        assert_eq!(b.len(), 64);
        assert_eq!(b.get(0), Some(true));
        assert_eq!(b.get(63), Some(false));
    }

    #[test]
    fn from_bools_matches_pushes() {
        let b = Bits::from_bools(&[true, true, false]);
        assert_eq!(b.to_string(), "110");
    }
}
