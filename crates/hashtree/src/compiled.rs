//! The compiled dispatch directory: O(1) lookup over a flattened tree.
//!
//! # Why
//!
//! [`HashTree::lookup`] walks from the root, one key bit per internal node
//! — O(height) pointer chases on the hottest path in the system (every
//! register, move and locate resolves a key). Classic extendible hashing,
//! the paper's own ancestry, flattens the tree into a `2^d` directory so a
//! lookup is a single array index. [`CompiledDirectory`] is that directory
//! for the hash tree.
//!
//! # Shape
//!
//! The directory holds `2^d` slots, where `d` is the number of key bits
//! needed to reach any *branching decision* in the tree. A key's slot is
//! its top `d` bits; the slot holds the [`IAgentId`] that
//! [`HashTree::lookup`] would return for every key sharing those bits.
//!
//! `d` counts only **valid bits** (branch positions). Unused label bits and
//! the root's skip prefix are *recorded but never constrain a lookup*
//! (paper §3), so they need no directory depth: a leaf whose hyper-label
//! consumes `c` key bits but constrains only `v` of them owns `2^(d-v)`
//! slots — a non-contiguous region when unused bits sit between valid
//! ones. [`HashTree::max_consumed_bits`] therefore bounds `d` from above;
//! the compiled depth is usually much smaller.
//!
//! # Maintenance
//!
//! The directory is stamped with the tree's structural
//! [generation](HashTree::generation). After a split or merge, callers
//! pass the IAgents the change involved ([`SplitApplied::affected`] plus
//! the new IAgent, or [`MergeApplied::absorbers`]) to
//! [`CompiledDirectory::refresh`], which rewrites only those leaves'
//! regions instead of rebuilding the whole table. A directory whose stamp
//! does not match the tree must not serve lookups; [`is_current`] makes
//! that check explicit and cheap.
//!
//! [`SplitApplied::affected`]: crate::SplitApplied::affected
//! [`MergeApplied::absorbers`]: crate::MergeApplied::absorbers
//! [`is_current`]: CompiledDirectory::is_current

use crate::key::AgentKey;
use crate::tree::{HashTree, IAgentId};

/// Deepest branching position the directory will compile. `2^24` slots of
/// 8 bytes is 128 MiB — past that, the memory/latency trade no longer
/// favours a flat table and [`CompiledDirectory::lookup`] reports `None`
/// so callers fall back to the tree walk.
pub const MAX_COMPILED_DEPTH: usize = 24;

/// A flattened, generation-stamped image of a [`HashTree`]: one slot per
/// `depth`-bit key prefix, holding the leaf IAgent that serves it.
///
/// # Examples
///
/// ```
/// use agentrack_hashtree::{AgentKey, CompiledDirectory, HashTree, IAgentId, Side, SplitKind};
///
/// let mut tree = HashTree::new(IAgentId::new(0));
/// let cand = tree
///     .split_candidates(IAgentId::new(0))?
///     .into_iter()
///     .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
///     .unwrap();
/// let applied = tree.apply_split(&cand, IAgentId::new(1), Side::Right)?;
///
/// let mut dir = CompiledDirectory::build(&tree);
/// assert_eq!(dir.lookup(AgentKey::new(0)), Some(IAgentId::new(0)));
/// assert_eq!(dir.lookup(AgentKey::new(u64::MAX)), Some(IAgentId::new(1)));
///
/// // After another change, refresh only the involved region.
/// let cand = tree
///     .split_candidates(IAgentId::new(1))?
///     .into_iter()
///     .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
///     .unwrap();
/// let applied = tree.apply_split(&cand, IAgentId::new(2), Side::Right)?;
/// let mut involved = applied.affected.clone();
/// involved.push(applied.new_iagent);
/// dir.refresh(&tree, &involved);
/// assert_eq!(dir.lookup(AgentKey::new(u64::MAX)), Some(IAgentId::new(2)));
/// assert!(dir.is_current(&tree));
/// # Ok::<(), agentrack_hashtree::TreeError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CompiledDirectory {
    /// `2^depth` slots; empty when the tree is too deep to compile.
    slots: Vec<IAgentId>,
    /// Number of top key bits indexing the table.
    depth: usize,
    /// The tree generation this image reflects.
    generation: u64,
    /// `false` when the tree's branch depth exceeded
    /// [`MAX_COMPILED_DEPTH`]: lookups must take the tree walk.
    compiled: bool,
}

impl CompiledDirectory {
    /// Compiles the full directory for `tree`.
    #[must_use]
    pub fn build(tree: &HashTree) -> Self {
        let depth = branch_depth(tree);
        if depth > MAX_COMPILED_DEPTH {
            return CompiledDirectory {
                slots: Vec::new(),
                depth,
                generation: tree.generation(),
                compiled: false,
            };
        }
        let mut dir = CompiledDirectory {
            slots: vec![IAgentId::new(u64::MAX); 1usize << depth],
            depth,
            generation: tree.generation(),
            compiled: true,
        };
        for ia in tree.iagents() {
            dir.emit_leaf(tree, ia);
        }
        dir
    }

    /// Incrementally re-compiles after one structural change: only the
    /// regions of `involved` leaves are rewritten. Pass the IAgents the
    /// change reported — [`SplitApplied::affected`] plus the new IAgent
    /// for a split, [`MergeApplied::absorbers`] for a merge; their
    /// post-change regions jointly cover every slot the change moved.
    /// IAgents no longer in the tree are skipped (a merged-away leaf's
    /// region is covered by its absorbers).
    ///
    /// Falls back to a full [`build`](Self::build) when the table must
    /// grow (a split branched deeper than the current depth) or when the
    /// directory was not compiled. The table never shrinks on a merge:
    /// extra low index bits are simply unconstrained, and keeping them
    /// makes merge refreshes O(region) instead of O(table).
    ///
    /// [`SplitApplied::affected`]: crate::SplitApplied::affected
    /// [`MergeApplied::absorbers`]: crate::MergeApplied::absorbers
    pub fn refresh(&mut self, tree: &HashTree, involved: &[IAgentId]) {
        // A rehash can only deepen the tree through the leaves it touched
        // (`involved` is every leaf whose hyper-label changed), so the
        // depth check needs only those — not a full-tree scan, which would
        // cost as much as the rebuild this method exists to avoid.
        let required = involved
            .iter()
            .filter(|&&ia| tree.contains(ia))
            .map(|&ia| {
                tree.hyper_label(ia)
                    .expect("contained leaf has a hyper-label")
                    .valid_bit_positions()
                    .last()
                    .map_or(0, |&p| p + 1)
            })
            .max()
            .unwrap_or(0);
        if !self.compiled || required > self.depth {
            *self = CompiledDirectory::build(tree);
            return;
        }
        for &ia in involved {
            if tree.contains(ia) {
                self.emit_leaf(tree, ia);
            }
        }
        self.generation = tree.generation();
    }

    /// O(1) lookup: the IAgent serving `key`, or `None` when the tree was
    /// too deep to compile (callers fall back to [`HashTree::lookup`]).
    #[inline]
    #[must_use]
    pub fn lookup(&self, key: AgentKey) -> Option<IAgentId> {
        if !self.compiled {
            return None;
        }
        // depth == 0: a single slot serves the whole key space (shifting
        // by 64 would be UB).
        let index = if self.depth == 0 {
            0
        } else {
            (key.raw() >> (64 - self.depth)) as usize
        };
        Some(self.slots[index])
    }

    /// The tree generation this directory was compiled against.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when the directory reflects `tree`'s current structure and
    /// can serve lookups.
    #[must_use]
    pub fn is_current(&self, tree: &HashTree) -> bool {
        self.compiled && self.generation == tree.generation()
    }

    /// Number of top key bits indexing the table.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of slots (`2^depth`), 0 when not compiled.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Approximate heap footprint of the table in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<IAgentId>()
    }

    /// Exhaustively checks every slot against [`HashTree::lookup`].
    ///
    /// O(`2^depth` · height) — intended for tests and debugging, not the
    /// hot path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first disagreeing slot, a stale
    /// generation stamp, or a depth mismatch.
    pub fn verify(&self, tree: &HashTree) -> Result<(), String> {
        if !self.compiled {
            return Ok(());
        }
        if self.generation != tree.generation() {
            return Err(format!(
                "directory at generation {}, tree at {}",
                self.generation,
                tree.generation()
            ));
        }
        if branch_depth(tree) > self.depth {
            return Err(format!(
                "directory depth {} shallower than the tree's branch depth {}",
                self.depth,
                branch_depth(tree)
            ));
        }
        for (slot, &got) in self.slots.iter().enumerate() {
            // A key whose top bits are the slot index, rest zero; every
            // key in the slot shares its branch bits, so one witness per
            // slot suffices.
            let key = if self.depth == 0 {
                AgentKey::new(0)
            } else {
                AgentKey::new((slot as u64) << (64 - self.depth))
            };
            let expect = tree.lookup(key);
            if got != expect {
                return Err(format!(
                    "slot {slot:0width$b} holds {got}, tree says {expect}",
                    width = self.depth
                ));
            }
        }
        Ok(())
    }

    /// Writes `ia` into every slot its leaf owns.
    ///
    /// The leaf's hyper-label constrains the key bits at valid-bit
    /// positions and leaves every other position free; its region is the
    /// set of slot indices matching the constrained bits — enumerated by
    /// the standard submask walk over the free positions, so the work is
    /// exactly the region size and a full build totals exactly `2^depth`
    /// slot writes.
    fn emit_leaf(&mut self, tree: &HashTree, ia: IAgentId) {
        let hl = tree
            .hyper_label(ia)
            .expect("emit_leaf called for an IAgent not in the tree");
        // Constraint over slot-index bits: key bit p maps to index bit
        // (depth - 1 - p).
        let mut mask = 0u64;
        let mut value = 0u64;
        let mut cursor = hl.prefix_skip().len();
        for label in hl.labels() {
            debug_assert!(cursor < self.depth, "valid bit beyond table depth");
            let bit = 1u64 << (self.depth - 1 - cursor);
            mask |= bit;
            if label.valid_bit() {
                value |= bit;
            }
            cursor += label.len();
        }
        // depth == 0: one unconstrained slot.
        if self.depth == 0 {
            self.slots[0] = ia;
            return;
        }
        let free = !mask & ((1u64 << self.depth) - 1);
        let mut sub = 0u64;
        loop {
            self.slots[(value | sub) as usize] = ia;
            if sub == free {
                break;
            }
            sub = sub.wrapping_sub(free) & free;
        }
    }
}

impl std::fmt::Debug for CompiledDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledDirectory")
            .field("depth", &self.depth)
            .field("slots", &self.slots.len())
            .field("generation", &self.generation)
            .field("compiled", &self.compiled)
            .finish()
    }
}

/// Key bits needed to reach every branching decision: one past the deepest
/// valid-bit position, 0 for a single-leaf tree. Unused bits and skip
/// prefixes need no depth — they never constrain a lookup.
fn branch_depth(tree: &HashTree) -> usize {
    tree.iagents()
        .map(|ia| {
            let hl = tree.hyper_label(ia).expect("iagents() returned a leaf");
            hl.valid_bit_positions()
                .last()
                .map_or(0, |&deepest| deepest + 1)
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Side, SplitCandidate, SplitKind};

    fn ia(n: u64) -> IAgentId {
        IAgentId::new(n)
    }

    fn simple(tree: &HashTree, iagent: IAgentId, m: usize) -> SplitCandidate {
        tree.split_candidates(iagent)
            .unwrap()
            .into_iter()
            .find(|c| c.kind == SplitKind::Simple { m })
            .unwrap_or_else(|| panic!("no simple-{m} candidate for {iagent}"))
    }

    /// The sample keys `verify` cannot cover: random-ish raws exercising
    /// low bits beyond the table depth.
    fn sample_keys() -> Vec<AgentKey> {
        (0..512u64)
            .map(AgentKey::from_sequential)
            .chain([0, 1, u64::MAX, 1 << 63, (1 << 63) - 1].map(AgentKey::new))
            .collect()
    }

    fn assert_agrees(dir: &CompiledDirectory, tree: &HashTree) {
        dir.verify(tree).unwrap();
        for key in sample_keys() {
            assert_eq!(
                dir.lookup(key),
                Some(tree.lookup(key)),
                "disagreement at {key}"
            );
        }
    }

    #[test]
    fn single_leaf_tree_compiles_to_one_slot() {
        let tree = HashTree::new(ia(9));
        let dir = CompiledDirectory::build(&tree);
        assert_eq!(dir.depth(), 0);
        assert_eq!(dir.slot_count(), 1);
        assert!(dir.is_current(&tree));
        assert_agrees(&dir, &tree);
    }

    #[test]
    fn figure1_style_tree_compiles_exactly() {
        // IA0: 0.0, IA2: 0.1, IA1: 10.0, IA3: 10.1 — multi-bit label "10"
        // with an unused bit between valid bits.
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(0), 1), ia(2), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 2), ia(3), Side::Right)
            .unwrap();
        let dir = CompiledDirectory::build(&tree);
        // Valid bits sit at key positions 0, 1 (left side) and 0, 2
        // (right side, bit 1 unused): depth 3.
        assert_eq!(dir.depth(), 3);
        assert_agrees(&dir, &tree);
        // The unused bit leaves IA1 owning the non-contiguous slots
        // {100, 110}.
        assert_eq!(dir.lookup(AgentKey::new(0b100 << 61)), Some(ia(1)));
        assert_eq!(dir.lookup(AgentKey::new(0b110 << 61)), Some(ia(1)));
        assert_eq!(dir.lookup(AgentKey::new(0b101 << 61)), Some(ia(3)));
        assert_eq!(dir.lookup(AgentKey::new(0b111 << 61)), Some(ia(3)));
    }

    #[test]
    fn skip_prefix_after_root_merge_stays_unconstrained() {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_merge(ia(1)).unwrap();
        // Single leaf with skip prefix [0]: depth 0 again.
        let dir = CompiledDirectory::build(&tree);
        assert_eq!(dir.depth(), 0);
        assert_agrees(&dir, &tree);
    }

    #[test]
    fn refresh_after_split_rewrites_only_the_involved_region() {
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        let mut dir = CompiledDirectory::build(&tree);
        assert_agrees(&dir, &tree);

        // Split IA1 at the same depth the table already covers… it does
        // not: m=1 branches one level deeper, so this exercises the
        // grow-and-rebuild path.
        let applied = tree
            .apply_split(&simple(&tree, ia(1), 1), ia(2), Side::Right)
            .unwrap();
        let mut involved = applied.affected.clone();
        involved.push(applied.new_iagent);
        dir.refresh(&tree, &involved);
        assert_agrees(&dir, &tree);

        // A merge keeps the table size and rewrites only the absorbers'
        // regions.
        let merged = tree.apply_merge(ia(2)).unwrap();
        let depth_before = dir.depth();
        dir.refresh(&tree, &merged.absorbers);
        assert_eq!(dir.depth(), depth_before, "merge must not shrink");
        assert_agrees(&dir, &tree);
    }

    #[test]
    fn refresh_handles_complex_splits_on_unused_bits() {
        // Build a multi-bit label, then promote its unused bit.
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 2), ia(2), Side::Right)
            .unwrap();
        let mut dir = CompiledDirectory::build(&tree);
        assert_agrees(&dir, &tree);

        let complex = tree
            .split_candidates(ia(1))
            .unwrap()
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Complex { .. }))
            .expect("multi-bit label must yield a complex candidate");
        let applied = tree.apply_split(&complex, ia(7), Side::Right).unwrap();
        let mut involved = applied.affected.clone();
        involved.push(applied.new_iagent);
        dir.refresh(&tree, &involved);
        assert_agrees(&dir, &tree);
    }

    #[test]
    fn stale_directory_reports_not_current() {
        let mut tree = HashTree::new(ia(0));
        let dir = CompiledDirectory::build(&tree);
        assert!(dir.is_current(&tree));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        assert!(!dir.is_current(&tree));
        assert!(dir.verify(&tree).is_err());
    }

    #[test]
    fn too_deep_trees_fall_back_to_the_walk() {
        let mut tree = HashTree::new(ia(0));
        // One deep path: repeatedly split the same leaf on m = 1 until
        // the branch depth passes the cap.
        let mut next = 1u64;
        while crate::compiled::branch_depth(&tree) <= MAX_COMPILED_DEPTH {
            let deepest = tree
                .iagents()
                .max_by_key(|&ia| tree.consumed_bits(ia).unwrap())
                .unwrap();
            tree.apply_split(&simple(&tree, deepest, 1), ia(1000 + next), Side::Right)
                .unwrap();
            next += 1;
        }
        let dir = CompiledDirectory::build(&tree);
        assert!(!dir.is_current(&tree));
        assert_eq!(dir.lookup(AgentKey::new(0)), None);
        assert_eq!(dir.slot_count(), 0);
        dir.verify(&tree).unwrap(); // vacuously fine
    }

    #[test]
    fn build_work_is_exactly_one_write_per_slot() {
        // Regions partition the table: the sum of region sizes is 2^d, so
        // no slot keeps its poison value.
        let mut tree = HashTree::new(ia(0));
        tree.apply_split(&simple(&tree, ia(0), 1), ia(1), Side::Right)
            .unwrap();
        tree.apply_split(&simple(&tree, ia(1), 3), ia(2), Side::Right)
            .unwrap();
        let dir = CompiledDirectory::build(&tree);
        assert!(dir
            .slots
            .iter()
            .all(|&slot| slot != IAgentId::new(u64::MAX)));
        assert_agrees(&dir, &tree);
    }

    #[test]
    fn debug_is_compact() {
        let dir = CompiledDirectory::build(&HashTree::new(ia(0)));
        let shown = format!("{dir:?}");
        assert!(shown.contains("depth"));
        assert!(!shown.contains("IA0"), "slots must not be dumped: {shown}");
    }
}
