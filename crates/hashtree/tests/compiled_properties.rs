//! Property-based tests for the compiled directory: the flat `2^d` table
//! must be observationally identical to the tree walk it replaces, no
//! matter what rehash sequence produced the tree — including the awkward
//! shapes (multi-bit labels whose unused bits must *not* constrain the
//! lookup) that complex splits and merges create.

use agentrack_hashtree::{AgentKey, CompiledDirectory, HashTree, IAgentId, Side, TreeError};
use proptest::prelude::*;

/// One randomly-directed rehash operation (mirrors `properties.rs`).
#[derive(Debug, Clone)]
enum Op {
    Split {
        leaf_sel: usize,
        cand_sel: usize,
        new_side: bool,
    },
    Merge {
        leaf_sel: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(leaf_sel, cand_sel, new_side)| Op::Split {
                leaf_sel,
                cand_sel,
                new_side,
            }
        ),
        1 => any::<usize>().prop_map(|leaf_sel| Op::Merge { leaf_sel }),
    ]
}

/// Applies an op and returns the involved IAgents exactly as the HAgent
/// reports them to `refresh` (split: affected + the new leaf; merge: the
/// absorbers). `None` when the op was a legal no-op for this tree.
fn apply(tree: &mut HashTree, op: &Op, next_id: &mut u64) -> Option<Vec<IAgentId>> {
    let mut iagents: Vec<IAgentId> = tree.iagents().collect();
    iagents.sort_unstable();
    match *op {
        Op::Split {
            leaf_sel,
            cand_sel,
            new_side,
        } => {
            let target = iagents[leaf_sel % iagents.len()];
            let candidates = tree.split_candidates(target).expect("known IAgent");
            if candidates.is_empty() {
                return None;
            }
            let cand = candidates[cand_sel % candidates.len().min(8)];
            let new_iagent = IAgentId::new(*next_id);
            let side = if new_side { Side::Right } else { Side::Left };
            match tree.apply_split(&cand, new_iagent, side) {
                Ok(applied) => {
                    *next_id += 1;
                    let mut involved = applied.affected;
                    involved.push(applied.new_iagent);
                    Some(involved)
                }
                Err(TreeError::DepthExceeded { .. }) => None,
                Err(e) => panic!("unexpected split error: {e}"),
            }
        }
        Op::Merge { leaf_sel } => {
            let target = iagents[leaf_sel % iagents.len()];
            match tree.apply_merge(target) {
                Ok(applied) => Some(applied.absorbers),
                Err(TreeError::LastIAgent) => None,
                Err(e) => panic!("unexpected merge error: {e}"),
            }
        }
    }
}

/// Keys that probe every leaf and every slot boundary: one compatible
/// witness per leaf, each also perturbed in its low (unconstrained) bits.
fn probe_keys(tree: &HashTree, extra: &[u64]) -> Vec<AgentKey> {
    let mut keys: Vec<AgentKey> = extra.iter().map(|&raw| AgentKey::new(raw)).collect();
    keys.extend((0..64u64).map(AgentKey::from_sequential));
    for (_, hl) in tree.mapping() {
        let mut raw = 0u64;
        let mut cursor = hl.prefix_skip().len();
        for label in hl.labels() {
            if label.valid_bit() {
                raw |= 1u64 << (63 - cursor);
            }
            cursor += label.len();
        }
        // The witness itself, with trailing bits flipped (must not change
        // the answer), and with an *unused* mid-label bit flipped (ditto).
        keys.push(AgentKey::new(raw));
        keys.push(AgentKey::new(raw | (u64::MAX >> cursor.min(63))));
        if cursor < 64 {
            keys.push(AgentKey::new(raw | (1u64 << (63 - cursor))));
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An incrementally-maintained directory answers every key exactly as
    /// the tree walk does, after any rehash sequence.
    #[test]
    fn compiled_agrees_with_tree_walk(
        ops in prop::collection::vec(op_strategy(), 1..40),
        extra in prop::collection::vec(any::<u64>(), 8..9),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut dir = CompiledDirectory::build(&tree);
        let mut next_id = 1u64;
        for op in &ops {
            if let Some(involved) = apply(&mut tree, op, &mut next_id) {
                dir.refresh(&tree, &involved);
            }
            prop_assert!(dir.is_current(&tree));
            for key in probe_keys(&tree, &extra) {
                prop_assert_eq!(
                    dir.lookup(key).expect("compiled within depth cap"),
                    tree.lookup(key),
                    "key {} disagrees after {:?}", key, op
                );
            }
        }
        // The exhaustive slot-by-slot check. Note the maintained table may
        // be *deeper* than a fresh build (merges never shrink it — the
        // extra low index bits are unconstrained), so the comparison with
        // a fresh build is observational, not structural.
        dir.verify(&tree).expect("slot-exact directory");
        let fresh = CompiledDirectory::build(&tree);
        fresh.verify(&tree).expect("fresh build is slot-exact");
        prop_assert!(dir.depth() >= fresh.depth(), "maintained table shrank");
    }

    /// Generation stamps only move forward, and `is_current` is precisely
    /// "compiled at the tree's current generation".
    #[test]
    fn generation_stamps_are_monotonic(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut dir = CompiledDirectory::build(&tree);
        let mut next_id = 1u64;
        let mut last_gen = dir.generation();
        for op in &ops {
            if let Some(involved) = apply(&mut tree, op, &mut next_id) {
                // The tree moved on: a directory compiled against the old
                // generation must report stale.
                prop_assert!(!dir.is_current(&tree));
                dir.refresh(&tree, &involved);
            }
            prop_assert!(dir.generation() >= last_gen, "generation went backwards");
            prop_assert_eq!(dir.generation(), tree.generation());
            prop_assert!(dir.is_current(&tree));
            last_gen = dir.generation();
        }
    }

    /// Complex-split-heavy sequences produce multi-bit labels with unused
    /// bits; flipping an unused bit in a key must never change the answer,
    /// in both the walk and the table (regression: the table must index by
    /// *valid-bit* positions only).
    #[test]
    fn unused_bits_never_constrain_lookup(
        ops in prop::collection::vec(op_strategy(), 1..30),
        flips in prop::collection::vec(any::<u64>(), 4..5),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &ops {
            apply(&mut tree, op, &mut next_id);
        }
        let dir = CompiledDirectory::build(&tree);
        for (ia, hl) in tree.mapping() {
            if !hl.has_unused_bits() {
                continue;
            }
            // A witness key for the leaf, then flip every unused position
            // (prefix-skip bits and each label's trailing bits) in random
            // combinations: the key must keep resolving to this leaf.
            let mut raw = 0u64;
            let mut unused_positions = Vec::new();
            let mut cursor = 0usize;
            for _ in 0..hl.prefix_skip().len() {
                unused_positions.push(cursor);
                cursor += 1;
            }
            for label in hl.labels() {
                if label.valid_bit() {
                    raw |= 1u64 << (63 - cursor);
                }
                cursor += 1;
                for _ in 0..label.len() - 1 {
                    unused_positions.push(cursor);
                    cursor += 1;
                }
            }
            for &flip in &flips {
                let mut key = raw;
                for (i, &pos) in unused_positions.iter().enumerate() {
                    if flip & (1 << (i % 64)) != 0 {
                        key |= 1u64 << (63 - pos);
                    }
                }
                let key = AgentKey::new(key);
                prop_assert_eq!(tree.lookup(key), ia,
                    "walk: unused bit constrained key {}", key);
                prop_assert_eq!(dir.lookup(key).expect("compiled"), ia,
                    "table: unused bit constrained key {}", key);
            }
        }
    }
}
