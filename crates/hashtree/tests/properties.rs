//! Property-based tests for the hash tree.
//!
//! These check the invariants the location mechanism relies on:
//!
//! * the tree always encodes a *total* mapping — every key is served by
//!   exactly one IAgent, and traversal agrees with hyper-label
//!   compatibility;
//! * rehashing is *local* — a split or merge changes the mapping only for
//!   keys whose IAgent is reported as involved ("the splitting and merging
//!   process should affect the mapping of only the mobile agents and the
//!   IAgents that are involved in the process", paper §1);
//! * structural invariants survive arbitrary op sequences;
//! * serialisation round-trips the hash function exactly.

use agentrack_hashtree::{AgentKey, HashTree, IAgentId, Side, SplitKind, TreeError};
use proptest::prelude::*;

/// One randomly-directed rehash operation.
#[derive(Debug, Clone)]
enum Op {
    /// Split the `leaf_sel`-th IAgent using its `cand_sel`-th candidate.
    Split {
        leaf_sel: usize,
        cand_sel: usize,
        new_side: bool,
    },
    /// Merge the `leaf_sel`-th IAgent.
    Merge { leaf_sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(leaf_sel, cand_sel, new_side)| Op::Split {
                leaf_sel,
                cand_sel,
                new_side,
            }
        ),
        1 => any::<usize>().prop_map(|leaf_sel| Op::Merge { leaf_sel }),
    ]
}

/// Applies an op, ignoring "can't do that right now" errors (merging the
/// last IAgent, exceeding the key depth) which valid random sequences hit.
fn apply(tree: &mut HashTree, op: &Op, next_id: &mut u64) -> Option<AppliedChange> {
    let mut iagents: Vec<IAgentId> = tree.iagents().collect();
    iagents.sort_unstable();
    match *op {
        Op::Split {
            leaf_sel,
            cand_sel,
            new_side,
        } => {
            let target = iagents[leaf_sel % iagents.len()];
            let candidates = tree.split_candidates(target).expect("known IAgent");
            if candidates.is_empty() {
                return None;
            }
            // Bias toward early candidates (complex first, small m) the way
            // the real planner does, but allow any.
            let cand = candidates[cand_sel % candidates.len().min(8)];
            let new_iagent = IAgentId::new(*next_id);
            let side = if new_side { Side::Right } else { Side::Left };
            match tree.apply_split(&cand, new_iagent, side) {
                Ok(applied) => {
                    *next_id += 1;
                    Some(AppliedChange::Split {
                        new_iagent: applied.new_iagent,
                        affected: applied.affected,
                    })
                }
                Err(TreeError::DepthExceeded { .. }) => None,
                Err(e) => panic!("unexpected split error: {e}"),
            }
        }
        Op::Merge { leaf_sel } => {
            let target = iagents[leaf_sel % iagents.len()];
            match tree.apply_merge(target) {
                Ok(applied) => Some(AppliedChange::Merge {
                    removed: applied.removed,
                    absorbers: applied.absorbers,
                }),
                Err(TreeError::LastIAgent) => None,
                Err(e) => panic!("unexpected merge error: {e}"),
            }
        }
    }
}

enum AppliedChange {
    Split {
        new_iagent: IAgentId,
        affected: Vec<IAgentId>,
    },
    Merge {
        removed: IAgentId,
        absorbers: Vec<IAgentId>,
    },
}

fn sample_keys() -> Vec<AgentKey> {
    (0..512u64).map(AgentKey::from_sequential).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold and lookup agrees with compatibility after any op
    /// sequence.
    #[test]
    fn random_ops_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &ops {
            apply(&mut tree, op, &mut next_id);
            tree.validate().expect("structural invariants");
        }
        let mapping = tree.mapping();
        for key in sample_keys() {
            let by_lookup = tree.lookup(key);
            let compatible: Vec<IAgentId> = mapping
                .iter()
                .filter(|(_, hl)| hl.is_compatible(key))
                .map(|(ia, _)| *ia)
                .collect();
            prop_assert_eq!(&compatible, &vec![by_lookup],
                "key {} lookup/compatibility disagree", key);
        }
        // Hyper-label bookkeeping matches the tree's own accounting.
        for (ia, hl) in &mapping {
            prop_assert_eq!(hl.bit_len(), tree.consumed_bits(*ia).unwrap());
        }
    }

    /// A split changes the mapping only for keys previously served by an
    /// involved IAgent, and those keys can only move to the new IAgent.
    #[test]
    fn split_is_local(
        setup in prop::collection::vec(op_strategy(), 0..20),
        split in (any::<usize>(), any::<usize>(), any::<bool>()),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &setup {
            apply(&mut tree, op, &mut next_id);
        }
        let before: Vec<(AgentKey, IAgentId)> =
            sample_keys().into_iter().map(|k| (k, tree.lookup(k))).collect();

        let op = Op::Split { leaf_sel: split.0, cand_sel: split.1, new_side: split.2 };
        if let Some(AppliedChange::Split { new_iagent, affected }) =
            apply(&mut tree, &op, &mut next_id)
        {
            for (key, old) in before {
                let new = tree.lookup(key);
                if new != old {
                    prop_assert!(affected.contains(&old),
                        "key {} moved from uninvolved {}", key, old);
                    prop_assert_eq!(new, new_iagent,
                        "key {} moved somewhere other than the new IAgent", key);
                }
            }
        }
    }

    /// A merge changes the mapping only for keys of the removed IAgent, and
    /// they can only move to reported absorbers.
    #[test]
    fn merge_is_local(
        setup in prop::collection::vec(op_strategy(), 0..20),
        merge_sel in any::<usize>(),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &setup {
            apply(&mut tree, op, &mut next_id);
        }
        let before: Vec<(AgentKey, IAgentId)> =
            sample_keys().into_iter().map(|k| (k, tree.lookup(k))).collect();

        if let Some(AppliedChange::Merge { removed, absorbers }) =
            apply(&mut tree, &Op::Merge { leaf_sel: merge_sel }, &mut next_id)
        {
            for (key, old) in before {
                let new = tree.lookup(key);
                if new != old {
                    prop_assert_eq!(old, removed,
                        "key {} moved but was not served by the merged IAgent", key);
                    prop_assert!(absorbers.contains(&new),
                        "key {} moved to non-absorber {}", key, new);
                }
            }
            prop_assert!(!tree.contains(removed));
        }
    }

    /// Splitting and immediately merging the new IAgent restores the
    /// key → IAgent mapping exactly.
    #[test]
    fn merge_undoes_split(
        setup in prop::collection::vec(op_strategy(), 0..20),
        split in (any::<usize>(), any::<usize>(), any::<bool>()),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &setup {
            apply(&mut tree, op, &mut next_id);
        }
        let before: Vec<(AgentKey, IAgentId)> =
            sample_keys().into_iter().map(|k| (k, tree.lookup(k))).collect();

        let op = Op::Split { leaf_sel: split.0, cand_sel: split.1, new_side: split.2 };
        if let Some(AppliedChange::Split { new_iagent, .. }) =
            apply(&mut tree, &op, &mut next_id)
        {
            tree.apply_merge(new_iagent).expect("fresh leaf must merge");
            tree.validate().unwrap();
            for (key, old) in before {
                prop_assert_eq!(tree.lookup(key), old);
            }
        }
    }

    /// Serialisation round-trips the hash function exactly.
    #[test]
    fn serde_round_trip(ops in prop::collection::vec(op_strategy(), 0..30)) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &ops {
            apply(&mut tree, op, &mut next_id);
        }
        let json = serde_json::to_string(&tree).unwrap();
        let back: HashTree = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        prop_assert_eq!(&tree, &back);
        for key in sample_keys() {
            prop_assert_eq!(tree.lookup(key), back.lookup(key));
        }
    }

    /// Split candidates always include every simple split up to the key
    /// width, and complex candidates exactly cover the unused bits.
    #[test]
    fn candidate_enumeration_is_complete(ops in prop::collection::vec(op_strategy(), 0..25)) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &ops {
            apply(&mut tree, op, &mut next_id);
        }
        for iagent in tree.iagents().collect::<Vec<_>>() {
            let hl = tree.hyper_label(iagent).unwrap();
            let consumed = hl.bit_len();
            let candidates = tree.split_candidates(iagent).unwrap();

            let complex: Vec<_> = candidates.iter()
                .filter(|c| matches!(c.kind, SplitKind::Complex { .. }))
                .collect();
            let unused_bits = hl.prefix_skip().len()
                + hl.labels().iter().map(|l| l.len() - 1).sum::<usize>();
            prop_assert_eq!(complex.len(), unused_bits);

            let simple: Vec<_> = candidates.iter()
                .filter(|c| matches!(c.kind, SplitKind::Simple { .. }))
                .collect();
            prop_assert_eq!(simple.len(), 64 - consumed);
            // Complex candidates precede simple ones (paper order) and every
            // candidate's key bit is in range.
            let first_simple = candidates.iter()
                .position(|c| matches!(c.kind, SplitKind::Simple { .. }));
            if let Some(pos) = first_simple {
                let all_simple_after = candidates[pos..]
                    .iter()
                    .all(|c| matches!(c.kind, SplitKind::Simple { .. }));
                prop_assert!(all_simple_after, "simple candidate before a complex one");
            }
            for c in &candidates {
                prop_assert!(c.key_bit < 64);
            }
        }
    }
}
