//! Interleaving property test: *any* random interleaving of splits and
//! merges preserves, **after every single step** (not just at the end of
//! the sequence):
//!
//! * prefix-freeness — no key is compatible with two leaves' hyper-labels,
//!   and each leaf's witness key is claimed by that leaf alone;
//! * full id-space coverage — every probed key is compatible with exactly
//!   one leaf, and that leaf is what the tree walk returns;
//! * compiled directory ≡ tree walk — the incrementally-refreshed flat
//!   table agrees with the authoritative walk at each step.
//!
//! `properties.rs` checks invariants after a whole sequence;
//! this suite pins them at every intermediate tree shape, which is where
//! a split applied concurrently with a merge would first go wrong.

use agentrack_hashtree::{
    AgentKey, CompiledDirectory, HashTree, HyperLabel, IAgentId, PrefixRegion, Side, TreeError,
};
use proptest::prelude::*;

/// One randomly-directed rehash operation (mirrors `properties.rs`).
#[derive(Debug, Clone)]
enum Op {
    Split {
        leaf_sel: usize,
        cand_sel: usize,
        new_side: bool,
    },
    Merge {
        leaf_sel: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(leaf_sel, cand_sel, new_side)| Op::Split {
                leaf_sel,
                cand_sel,
                new_side,
            }
        ),
        1 => any::<usize>().prop_map(|leaf_sel| Op::Merge { leaf_sel }),
    ]
}

/// Applies an op and returns the involved IAgents as the HAgent would
/// report them to a directory refresh; `None` for legal no-ops.
fn apply(tree: &mut HashTree, op: &Op, next_id: &mut u64) -> Option<Vec<IAgentId>> {
    let mut iagents: Vec<IAgentId> = tree.iagents().collect();
    iagents.sort_unstable();
    match *op {
        Op::Split {
            leaf_sel,
            cand_sel,
            new_side,
        } => {
            let target = iagents[leaf_sel % iagents.len()];
            let candidates = tree.split_candidates(target).expect("known IAgent");
            if candidates.is_empty() {
                return None;
            }
            let cand = candidates[cand_sel % candidates.len().min(8)];
            let new_iagent = IAgentId::new(*next_id);
            let side = if new_side { Side::Right } else { Side::Left };
            match tree.apply_split(&cand, new_iagent, side) {
                Ok(applied) => {
                    *next_id += 1;
                    let mut involved = applied.affected;
                    involved.push(applied.new_iagent);
                    Some(involved)
                }
                Err(TreeError::DepthExceeded { .. }) => None,
                Err(e) => panic!("unexpected split error: {e}"),
            }
        }
        Op::Merge { leaf_sel } => {
            let target = iagents[leaf_sel % iagents.len()];
            match tree.apply_merge(target) {
                Ok(applied) => Some(applied.absorbers),
                Err(TreeError::LastIAgent) => None,
                Err(e) => panic!("unexpected merge error: {e}"),
            }
        }
    }
}

/// A key every bit of whose constrained positions matches the leaf's
/// hyper-label: the leaf's own witness in id space.
fn witness(hl: &agentrack_hashtree::HyperLabel) -> AgentKey {
    let mut raw = 0u64;
    let mut cursor = hl.prefix_skip().len();
    for label in hl.labels() {
        if label.valid_bit() {
            raw |= 1u64 << (63 - cursor);
        }
        cursor += label.len();
    }
    AgentKey::new(raw)
}

/// A rehash planned against a frozen base tree, exactly as the HAgent's
/// lease table holds it: the split keeps only the partition bit (the
/// candidate is re-derived at commit), the merge only its target.
#[derive(Debug, Clone)]
enum LeasedOp {
    Split {
        target: IAgentId,
        key_bit: usize,
        side: Side,
        new_iagent: IAgentId,
    },
    Merge {
        target: IAgentId,
    },
}

/// Commits a leased op through the same path the HAgent uses on
/// `IAgentReady`: re-derive the candidate by partition bit, apply, refresh
/// the compiled directory with the involved leaves only.
fn commit(tree: &mut HashTree, dir: &mut CompiledDirectory, op: &LeasedOp) {
    match *op {
        LeasedOp::Split {
            target,
            key_bit,
            side,
            new_iagent,
        } => {
            let cand = tree
                .refreshed_candidate(target, key_bit)
                .expect("a leased subtree is untouched by disjoint commits");
            let applied = tree
                .apply_split(&cand, new_iagent, side)
                .expect("refreshed candidate applies");
            let mut involved = applied.affected;
            involved.push(new_iagent);
            dir.refresh(tree, &involved);
        }
        LeasedOp::Merge { target } => {
            let applied = tree
                .apply_merge(target)
                .expect("a leased merge target is still a leaf");
            dir.refresh(tree, &applied.absorbers);
        }
    }
}

/// Deterministic permutation by selection: element `seeds[i] % remaining`
/// is drawn next. An empty seed list yields the identity order.
fn permute(items: &[LeasedOp], seeds: &[usize]) -> Vec<LeasedOp> {
    let mut pool = items.to_vec();
    let mut out = Vec::with_capacity(pool.len());
    let mut i = 0;
    while !pool.is_empty() {
        let k = seeds.get(i).copied().unwrap_or(0) % pool.len();
        out.push(pool.remove(k));
        i += 1;
    }
    out
}

fn sorted_mapping(tree: &HashTree) -> Vec<(IAgentId, HyperLabel)> {
    let mut mapping = tree.mapping();
    mapping.sort_by_key(|&(ia, _)| ia);
    mapping
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's fencing argument, as a property: a set of pairwise
    /// prefix-disjoint splits/merges, all planned against the same frozen
    /// tree (grant time), committed in *any* order (completion order),
    /// yields the same final tree shape and the same CompiledDirectory
    /// contents as committing them serially in plan order — so the HAgent
    /// may pipeline them freely.
    #[test]
    fn disjoint_rehashes_commute_with_any_commit_order(
        setup in prop::collection::vec(op_strategy(), 0..12),
        picks in prop::collection::vec(
            (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>()),
            1..10,
        ),
        orders in prop::collection::vec(
            prop::collection::vec(any::<usize>(), 0..16),
            1..4,
        ),
        extra in prop::collection::vec(any::<u64>(), 8..9),
    ) {
        // Grow a random base tree.
        let mut base = HashTree::new(IAgentId::new(0));
        let mut next_id = 1u64;
        for op in &setup {
            let _ = apply(&mut base, op, &mut next_id);
        }

        // Plan a pairwise prefix-disjoint op set against the frozen base,
        // exactly as the HAgent's admission check does: an op whose region
        // overlaps an already-granted one is dropped (it would be denied).
        let mut leaves: Vec<IAgentId> = base.iagents().collect();
        leaves.sort_unstable();
        let mut regions: Vec<PrefixRegion> = Vec::new();
        let mut planned: Vec<LeasedOp> = Vec::new();
        for &(leaf_sel, cand_sel, right, is_split) in &picks {
            let target = leaves[leaf_sel % leaves.len()];
            if is_split {
                let candidates = base.split_candidates(target).expect("known IAgent");
                if candidates.is_empty() {
                    continue;
                }
                let cand = candidates[cand_sel % candidates.len().min(8)];
                let region = base.split_region(&cand).expect("fresh candidate");
                if regions.iter().any(|r| r.overlaps(&region)) {
                    continue;
                }
                regions.push(region);
                planned.push(LeasedOp::Split {
                    target,
                    key_bit: cand.key_bit,
                    side: if right { Side::Right } else { Side::Left },
                    new_iagent: IAgentId::new(next_id),
                });
                next_id += 1;
            } else {
                let region = match base.merge_region(target) {
                    Ok(region) => region,
                    Err(_) => continue, // last IAgent: nothing to merge
                };
                if regions.iter().any(|r| r.overlaps(&region)) {
                    continue;
                }
                regions.push(region);
                planned.push(LeasedOp::Merge { target });
            }
        }
        if planned.is_empty() {
            return Ok(());
        }

        // The serial baseline (identity order) plus every random
        // completion order must agree on everything observable.
        let mut all_orders: Vec<Vec<usize>> = vec![Vec::new()];
        all_orders.extend(orders);
        let mut outcome: Option<Vec<(IAgentId, HyperLabel)>> = None;
        for seeds in &all_orders {
            let mut tree = base.clone();
            let mut dir = CompiledDirectory::build(&tree);
            for op in permute(&planned, seeds) {
                commit(&mut tree, &mut dir, &op);
                tree.validate().expect("structural invariants");
            }
            // The incrementally-refreshed directory answers like the walk.
            let probes = (0..64u64)
                .map(AgentKey::from_sequential)
                .chain(extra.iter().map(|&raw| AgentKey::new(raw)));
            for key in probes {
                prop_assert_eq!(
                    dir.lookup(key).expect("compiled within depth cap"),
                    tree.lookup(key),
                    "compiled directory diverged from the walk at key {}", key
                );
            }
            let mapping = sorted_mapping(&tree);
            match &outcome {
                None => outcome = Some(mapping),
                Some(first) => prop_assert_eq!(
                    first, &mapping,
                    "commit order {:?} changed the final tree", seeds
                ),
            }
        }
    }

    /// After *every* step of a random split/merge interleaving: labels are
    /// prefix-free, the id space is fully covered, and the compiled
    /// directory answers exactly like the tree walk.
    #[test]
    fn every_step_preserves_tree_invariants(
        ops in prop::collection::vec(op_strategy(), 1..30),
        extra in prop::collection::vec(any::<u64>(), 8..9),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut dir = CompiledDirectory::build(&tree);
        let mut next_id = 1u64;

        for op in &ops {
            if let Some(involved) = apply(&mut tree, op, &mut next_id) {
                dir.refresh(&tree, &involved);
            }
            tree.validate().expect("structural invariants");

            let mapping = tree.mapping();

            // Prefix-freeness: each leaf's witness key is compatible with
            // that leaf and no other.
            for (ia, hl) in &mapping {
                let w = witness(hl);
                let owners: Vec<IAgentId> = mapping
                    .iter()
                    .filter(|(_, other)| other.is_compatible(w))
                    .map(|(other_ia, _)| *other_ia)
                    .collect();
                prop_assert_eq!(&owners, &vec![*ia],
                    "witness of {} after {:?} claimed by {:?}", ia, op, owners);
            }

            // Full coverage + uniqueness + compiled agreement over a probe
            // set: sequential keys plus random extras.
            let probes = (0..64u64)
                .map(AgentKey::from_sequential)
                .chain(extra.iter().map(|&raw| AgentKey::new(raw)));
            for key in probes {
                let by_walk = tree.lookup(key);
                let compatible: Vec<IAgentId> = mapping
                    .iter()
                    .filter(|(_, hl)| hl.is_compatible(key))
                    .map(|(ia, _)| *ia)
                    .collect();
                prop_assert_eq!(&compatible, &vec![by_walk],
                    "key {} covered by {:?} after {:?}", key, compatible, op);
                prop_assert_eq!(
                    dir.lookup(key).expect("compiled within depth cap"),
                    by_walk,
                    "compiled directory diverged from the walk at key {}", key
                );
            }
        }
    }
}
