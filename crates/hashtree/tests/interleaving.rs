//! Interleaving property test: *any* random interleaving of splits and
//! merges preserves, **after every single step** (not just at the end of
//! the sequence):
//!
//! * prefix-freeness — no key is compatible with two leaves' hyper-labels,
//!   and each leaf's witness key is claimed by that leaf alone;
//! * full id-space coverage — every probed key is compatible with exactly
//!   one leaf, and that leaf is what the tree walk returns;
//! * compiled directory ≡ tree walk — the incrementally-refreshed flat
//!   table agrees with the authoritative walk at each step.
//!
//! `properties.rs` checks invariants after a whole sequence;
//! this suite pins them at every intermediate tree shape, which is where
//! a split applied concurrently with a merge would first go wrong.

use agentrack_hashtree::{AgentKey, CompiledDirectory, HashTree, IAgentId, Side, TreeError};
use proptest::prelude::*;

/// One randomly-directed rehash operation (mirrors `properties.rs`).
#[derive(Debug, Clone)]
enum Op {
    Split {
        leaf_sel: usize,
        cand_sel: usize,
        new_side: bool,
    },
    Merge {
        leaf_sel: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(leaf_sel, cand_sel, new_side)| Op::Split {
                leaf_sel,
                cand_sel,
                new_side,
            }
        ),
        1 => any::<usize>().prop_map(|leaf_sel| Op::Merge { leaf_sel }),
    ]
}

/// Applies an op and returns the involved IAgents as the HAgent would
/// report them to a directory refresh; `None` for legal no-ops.
fn apply(tree: &mut HashTree, op: &Op, next_id: &mut u64) -> Option<Vec<IAgentId>> {
    let mut iagents: Vec<IAgentId> = tree.iagents().collect();
    iagents.sort_unstable();
    match *op {
        Op::Split {
            leaf_sel,
            cand_sel,
            new_side,
        } => {
            let target = iagents[leaf_sel % iagents.len()];
            let candidates = tree.split_candidates(target).expect("known IAgent");
            if candidates.is_empty() {
                return None;
            }
            let cand = candidates[cand_sel % candidates.len().min(8)];
            let new_iagent = IAgentId::new(*next_id);
            let side = if new_side { Side::Right } else { Side::Left };
            match tree.apply_split(&cand, new_iagent, side) {
                Ok(applied) => {
                    *next_id += 1;
                    let mut involved = applied.affected;
                    involved.push(applied.new_iagent);
                    Some(involved)
                }
                Err(TreeError::DepthExceeded { .. }) => None,
                Err(e) => panic!("unexpected split error: {e}"),
            }
        }
        Op::Merge { leaf_sel } => {
            let target = iagents[leaf_sel % iagents.len()];
            match tree.apply_merge(target) {
                Ok(applied) => Some(applied.absorbers),
                Err(TreeError::LastIAgent) => None,
                Err(e) => panic!("unexpected merge error: {e}"),
            }
        }
    }
}

/// A key every bit of whose constrained positions matches the leaf's
/// hyper-label: the leaf's own witness in id space.
fn witness(hl: &agentrack_hashtree::HyperLabel) -> AgentKey {
    let mut raw = 0u64;
    let mut cursor = hl.prefix_skip().len();
    for label in hl.labels() {
        if label.valid_bit() {
            raw |= 1u64 << (63 - cursor);
        }
        cursor += label.len();
    }
    AgentKey::new(raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After *every* step of a random split/merge interleaving: labels are
    /// prefix-free, the id space is fully covered, and the compiled
    /// directory answers exactly like the tree walk.
    #[test]
    fn every_step_preserves_tree_invariants(
        ops in prop::collection::vec(op_strategy(), 1..30),
        extra in prop::collection::vec(any::<u64>(), 8..9),
    ) {
        let mut tree = HashTree::new(IAgentId::new(0));
        let mut dir = CompiledDirectory::build(&tree);
        let mut next_id = 1u64;

        for op in &ops {
            if let Some(involved) = apply(&mut tree, op, &mut next_id) {
                dir.refresh(&tree, &involved);
            }
            tree.validate().expect("structural invariants");

            let mapping = tree.mapping();

            // Prefix-freeness: each leaf's witness key is compatible with
            // that leaf and no other.
            for (ia, hl) in &mapping {
                let w = witness(hl);
                let owners: Vec<IAgentId> = mapping
                    .iter()
                    .filter(|(_, other)| other.is_compatible(w))
                    .map(|(other_ia, _)| *other_ia)
                    .collect();
                prop_assert_eq!(&owners, &vec![*ia],
                    "witness of {} after {:?} claimed by {:?}", ia, op, owners);
            }

            // Full coverage + uniqueness + compiled agreement over a probe
            // set: sequential keys plus random extras.
            let probes = (0..64u64)
                .map(AgentKey::from_sequential)
                .chain(extra.iter().map(|&raw| AgentKey::new(raw)));
            for key in probes {
                let by_walk = tree.lookup(key);
                let compatible: Vec<IAgentId> = mapping
                    .iter()
                    .filter(|(_, hl)| hl.is_compatible(key))
                    .map(|(ia, _)| *ia)
                    .collect();
                prop_assert_eq!(&compatible, &vec![by_walk],
                    "key {} covered by {:?} after {:?}", key, compatible, op);
                prop_assert_eq!(
                    dir.lookup(key).expect("compiled within depth cap"),
                    by_walk,
                    "compiled directory diverged from the walk at key {}", key
                );
            }
        }
    }
}
